"""Tests for the SCALD HDL: expressions, parser, and macro expander."""

import pytest

from repro.hdl.expander import ExpansionError, MacroExpander, expand_source
from repro.hdl.expr import ExpressionError, evaluate, evaluate_int
from repro.hdl.parser import ScaldSyntaxError, parse


class TestExpressions:
    def test_arithmetic(self):
        assert evaluate("2+3*4") == 14
        assert evaluate("(2+3)*4") == 20
        assert evaluate("10/4") == 2.5
        assert evaluate("-3+5") == 2

    def test_parameters(self):
        """The SIZE-1 of Figure 3-5's I<0:SIZE-1> parameter declaration."""
        assert evaluate("SIZE-1", {"SIZE": 32}) == 31

    def test_integer_required(self):
        assert evaluate_int("SIZE/2", {"SIZE": 8}) == 4
        with pytest.raises(ExpressionError):
            evaluate_int("SIZE/3", {"SIZE": 8})

    def test_unknown_parameter(self):
        with pytest.raises(ExpressionError, match="unknown parameter"):
            evaluate("WIDTH", {})

    def test_division_by_zero(self):
        with pytest.raises(ExpressionError):
            evaluate("1/0")

    def test_malformed(self):
        with pytest.raises(ExpressionError):
            evaluate("2+")
        with pytest.raises(ExpressionError):
            evaluate("(2")
        with pytest.raises(ExpressionError):
            evaluate("2 3")


HEADER = "design T; period 50 ns; clock_unit 6.25 ns;\n"


class TestParser:
    def test_header(self):
        d = parse(HEADER)
        assert d.name == "T"
        assert d.period_ns == 50.0
        assert d.clock_unit_ns == 6.25

    def test_comments_ignored(self):
        d = parse("-- a comment\n" + HEADER + "-- another\n")
        assert d.name == "T"

    def test_prim_statement(self):
        d = parse(HEADER + 'prim REG r (CLOCK="CK", DATA="D", OUT="Q") delay=1.5:4.5;')
        (stmt,) = d.top
        assert stmt.prim == "REG"
        assert dict(stmt.props)["delay"] == "1.5:4.5"
        assert [p for p, _ in stmt.pins] == ["CLOCK", "DATA", "OUT"]

    def test_quoted_primitive_name(self):
        d = parse(HEADER + 'prim "SETUP HOLD CHK" s (I="D", CK="CK") setup=2.5 hold=1.5;')
        assert d.top[0].prim == "SETUP HOLD CHK"

    def test_sigref_features(self):
        d = parse(HEADER + 'prim BUF b (I=-"WE .S0-6"<0:7>&HZ, OUT="X");')
        ref = dict(d.top[0].pins)["I"]
        assert ref.invert
        assert ref.name == "WE .S0-6"
        assert ref.subscript == ("0", "7")
        assert ref.directives == "HZ"

    def test_macro_definition(self):
        d = parse(
            HEADER
            + 'macro "M" (SIZE); param "A"<0:SIZE-1>; '
            + 'prim BUF b (I="A"/P, OUT="X"/M); endmacro;'
        )
        macro = d.macros["M"]
        assert macro.size_params == ("SIZE",)
        assert macro.pin_decls[0][0] == "A"
        assert len(macro.body) == 1

    def test_use_statement(self):
        d = parse(HEADER + 'use "M" u1 (A="SIG"<0:31>) SIZE=32;')
        (stmt,) = d.top
        assert stmt.macro == "M"
        assert dict(stmt.params)["SIZE"] == "32"

    def test_wire_statement(self):
        d = parse(HEADER + 'wire "ADR" 0.0:6.0;')
        assert d.wires == [("ADR", 0.0, 6.0)]

    def test_case_statement(self):
        d = parse(HEADER + 'case "A"=0, "B"=1;\ncase "A"=1, "B"=0;')
        assert d.cases == [{"A": 0, "B": 1}, {"A": 1, "B": 0}]

    def test_case_value_validated(self):
        with pytest.raises(ScaldSyntaxError, match="0 or 1"):
            parse(HEADER + 'case "A"=3;')

    def test_duplicate_macro_rejected(self):
        src = HEADER + 'macro "M" (); endmacro;\nmacro "M" (); endmacro;'
        with pytest.raises(ScaldSyntaxError, match="duplicate"):
            parse(src)

    def test_syntax_error_carries_line(self):
        with pytest.raises(ScaldSyntaxError, match=":2"):
            parse("design T;\n???")

    def test_unterminated_macro(self):
        with pytest.raises(ScaldSyntaxError):
            parse(HEADER + 'macro "M" (); prim BUF b (I="A", OUT="B");')

    def test_multiple_props_parse(self):
        d = parse(HEADER + 'prim REG r (CLOCK="C", DATA="D", OUT="Q") delay=1.5:4.5 width=SIZE-1;')
        props = dict(d.top[0].props)
        assert props == {"delay": "1.5:4.5", "width": "SIZE - 1"}


RAM_MACRO = """
macro "16W RAM 10145A" (SIZE);
  param "I"<0:SIZE-1>, "A"<0:3>, "CS", "WE", "O"<0:SIZE-1>;
  prim CHG dchg (I1="I"/P<0:SIZE-1>, OUT="DCHG"/M<0:SIZE-1>) delay=1.5:3.0 width=SIZE;
  prim CHG achg (I1="A"/P<0:3>, I2="CS"/P, I3="WE"/P, OUT="ACHG"/M<0:SIZE-1>)
       delay=3.0:6.0 width=SIZE;
  prim CHG outc (I1="DCHG"/M<0:SIZE-1>, I2="ACHG"/M<0:SIZE-1>, OUT="O"/P<0:SIZE-1>)
       width=SIZE;
  prim "SETUP HOLD CHK" dsu (I="I"/P, CK=-"WE"/P) setup=4.5 hold=-1.0 width=SIZE;
  prim "SETUP RISE HOLD FALL CHK" asu (I="A"/P, CK="WE"/P) setup=3.5 hold=1.0;
  prim "MIN PULSE WIDTH" mpw (I="WE"/P) min_high=4.0;
endmacro;
"""


class TestExpander:
    def test_figure_3_5_ram_macro_expands(self):
        src = (
            HEADER
            + RAM_MACRO
            + 'use "16W RAM 10145A" rf (I="W DATA .S0-6"<0:31>, A="ADR"<0:3>, '
            + 'CS="CS .S0-8", WE="RAM WE", O="RAM OUT"<0:31>) SIZE=32;'
        )
        circuit, stats = expand_source(src)
        assert len(circuit.components) == 6
        assert circuit.nets["W DATA .S0-6"].width == 32
        assert circuit.nets["rf/DCHG"].width == 32
        assert stats.macro_calls == 1
        assert stats.primitives == 6

    def test_size_parameter_arithmetic(self):
        src = (
            HEADER
            + 'macro "M" (SIZE); param "A"<0:SIZE-1>; '
            + 'prim BUF b (I="A"/P, OUT="X"/M<0:SIZE/2-1>) width=SIZE/2; endmacro;'
            + 'use "M" u (A="SIG"<0:15>) SIZE=16;'
        )
        circuit, _ = expand_source(src)
        assert circuit.nets["u/X"].width == 8

    def test_nested_macros_and_locals(self):
        src = (
            HEADER
            + 'macro "INNER" (); param "X"; prim BUF b (I="X"/P, OUT="Y"/M); endmacro;'
            + 'macro "OUTER" (); param "IN"; '
            + 'use "INNER" i1 (X="IN"/P); use "INNER" i2 (X="L"/M); endmacro;'
            + 'use "OUTER" o (IN="TOP");'
        )
        circuit, stats = expand_source(src)
        # Locals are mangled per instance path.
        assert "o/i1/Y" in circuit.nets
        assert "o/i2/Y" in circuit.nets
        assert "o/L" in circuit.nets
        assert stats.max_depth == 2

    def test_macro_locals_are_on_die(self):
        """/M signals live inside the chip the macro describes: they carry
        no default interconnection delay (the macro's pin signals do)."""
        src = (
            HEADER
            + 'macro "M" (); param "A"; '
            + 'prim BUF b1 (I="A"/P, OUT="MID"/M); '
            + 'prim BUF b2 (I="MID"/M, OUT="EXTERNAL"); endmacro;'
            + 'use "M" u (A="IN .S0-6");'
        )
        circuit, _ = expand_source(src)
        assert circuit.nets["u/MID"].wire_delay_ps == (0, 0)
        assert circuit.nets["EXTERNAL"].wire_delay_ps is None

    def test_wire_statement_overrides_internal_default(self):
        src = (
            HEADER
            + 'macro "M" (); param "A"; prim BUF b (I="A"/P, OUT="MID"/M); '
            + 'prim BUF b2 (I="MID"/M, OUT="Q"); endmacro;'
            + 'use "M" u (A="IN .S0-6");'
            + 'wire "u/MID" 0.0:3.0;'
        )
        circuit, _ = expand_source(src)
        assert circuit.nets["u/MID"].wire_delay_ps == (0, 3_000)

    def test_synonyms_recorded(self):
        src = (
            HEADER
            + 'macro "M" (); param "A"; prim BUF b (I="A"/P, OUT="Q"); endmacro;'
            + 'use "M" u (A="REAL SIGNAL");'
        )
        expander = MacroExpander.from_source(src)
        expander.expand()
        assert ("u/A", "REAL SIGNAL") in expander.synonyms

    def test_complement_composition(self):
        """A '-' on the actual and a '-' inside the macro cancel."""
        src = (
            HEADER
            + 'macro "M" (); param "A"; prim BUF b (I=-"A"/P, OUT="Q"); endmacro;'
            + 'use "M" u (A=-"SIG .S0-6");'
        )
        circuit, _ = expand_source(src)
        conn = circuit.components["u/b"].pins["I"]
        assert not conn.invert

    def test_directive_from_actual_flows_in(self):
        src = (
            HEADER
            + 'macro "M" (); param "CK"; '
            + 'prim AND g (I1="CK"/P, I2="EN", OUT="Q"); endmacro;'
            + 'use "M" u (CK="CLK .P2-3"&H);'
        )
        circuit, _ = expand_source(src)
        assert circuit.components["u/g"].pins["I1"].directives == "H"

    def test_width_mismatch_rejected(self):
        src = (
            HEADER
            + 'macro "M" (SIZE); param "A"<0:SIZE-1>; '
            + 'prim BUF b (I="A"/P, OUT="Q"/M); endmacro;'
            + 'use "M" u (A="SIG"<0:7>) SIZE=32;'
        )
        with pytest.raises(ExpansionError, match="bits"):
            expand_source(src)

    def test_unbound_parameter_rejected(self):
        src = (
            HEADER
            + 'macro "M" (); param "A", "B"; prim BUF b (I="A"/P, OUT="Q"); endmacro;'
            + 'use "M" u (A="SIG");'
        )
        with pytest.raises(ExpansionError, match="without binding"):
            expand_source(src)

    def test_unknown_formal_rejected(self):
        src = (
            HEADER
            + 'macro "M" (); param "A"; prim BUF b (I="A"/P, OUT="Q"); endmacro;'
            + 'use "M" u (A="SIG", ZZZ="OTHER");'
        )
        with pytest.raises(ExpansionError, match="no\\s+parameter"):
            expand_source(src)

    def test_missing_size_param_rejected(self):
        src = (
            HEADER
            + 'macro "M" (SIZE); param "A"; prim BUF b (I="A"/P, OUT="Q"); endmacro;'
            + 'use "M" u (A="SIG");'
        )
        with pytest.raises(ExpansionError, match="requires"):
            expand_source(src)

    def test_unknown_macro_rejected(self):
        with pytest.raises(ExpansionError, match="no macro"):
            expand_source(HEADER + 'use "NOPE" u (A="SIG");')

    def test_recursion_guard(self):
        src = (
            HEADER
            + 'macro "M" (); param "A"; use "M" again (A="A"/P); endmacro;'
            + 'use "M" u (A="SIG");'
        )
        with pytest.raises(ExpansionError, match="recursive"):
            expand_source(src)

    def test_p_outside_macro_rejected(self):
        with pytest.raises(ExpansionError, match="/P"):
            expand_source(HEADER + 'prim BUF b (I="A"/P, OUT="Q");')

    def test_missing_period_rejected(self):
        with pytest.raises(ExpansionError, match="period"):
            expand_source('design T; prim BUF b (I="A", OUT="Q");')

    def test_wires_and_cases_applied(self):
        src = (
            HEADER
            + 'prim BUF b (I="A .S0-6", OUT="Q");'
            + 'wire "A .S0-6" 0.0:6.0; case "A .S0-6"=1;'
        )
        circuit, _ = expand_source(src)
        assert circuit.nets["A .S0-6"].wire_delay_ps == (0, 6_000)
        assert circuit.cases == [{"A .S0-6": 1}]

    def test_expanded_circuit_verifies(self):
        """End to end: text in, violations out."""
        from repro import TimingVerifier

        src = (
            HEADER
            + 'prim REG r (CLOCK="CK .P2-3", DATA="D .S3-6", OUT="Q") delay=1.5:4.5;'
            + 'prim "SETUP HOLD CHK" s (I="D .S3-6", CK="CK .P2-3") setup=2.5 hold=1.5;'
        )
        circuit, _ = expand_source(src)
        result = TimingVerifier(circuit).verify()
        assert any(v.kind.value == "setup" for v in result.violations)
