"""Tests for the critical-path settle-time explanation."""

import pytest

from repro import Circuit, EXACT, TimingVerifier
from repro.reporting.explain import SettleExplainer, explain_violation
from repro.workloads import fig_2_5_register_file


def chain_circuit():
    """SRC --buf(2/5)--> MID --buf(1/3)--> DST, no wire delay."""
    c = Circuit("chain", period_ns=50.0, clock_unit_ns=6.25)
    for name in ("MID", "DST"):
        c.net(name).wire_delay_ps = (0, 0)
    c.buf("MID", "SRC .S0-6", delay=(2.0, 5.0), name="b1")
    c.buf("DST", "MID", delay=(1.0, 3.0), name="b2")
    return c


class TestSettleExplainer:
    def _explainer(self, circuit, config=EXACT):
        result = TimingVerifier(circuit, config).verify()
        return SettleExplainer(circuit, result.cases[0].waveforms, config), result

    def test_linear_chain_traced_to_assertion(self):
        explainer, _ = self._explainer(chain_circuit())
        hops = explainer.explain("DST")
        assert [h.net for h in hops] == ["SRC .S0-6", "MID", "DST"]
        # SRC changes 37.5..50 (settles at 50); +5 and +3 down the chain.
        assert hops[0].settle_ps == 50_000
        assert hops[1].settle_ps == 55_000
        assert hops[2].settle_ps == 58_000

    def test_source_hop_labelled_assertion(self):
        explainer, _ = self._explainer(chain_circuit())
        hops = explainer.explain("DST")
        assert hops[0].via == "assertion"

    def test_critical_input_selection(self):
        """Of two gate inputs, the one that accounts for the output settle
        is chosen."""
        c = Circuit("pick", period_ns=50.0, clock_unit_ns=6.25)
        for name in ("SLOW", "OUT"):
            c.net(name).wire_delay_ps = (0, 0)
        c.buf("SLOW", "LATE .S0-7", delay=(4.0, 9.0), name="slowbuf")
        c.gate("OR", "OUT", ["SLOW", "EARLY .S0-2"], delay=(1.0, 2.0), name="g")
        explainer, _ = self._explainer(c)
        hops = explainer.explain("OUT")
        assert hops[0].net == "LATE .S0-7"

    def test_register_traced_to_clock(self):
        c = Circuit("reg", period_ns=50.0, clock_unit_ns=6.25)
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        explainer, _ = self._explainer(c)
        hops = explainer.explain("Q")
        assert hops[0].net == "CK .P2-3"
        assert "clocked" in hops[1].via

    def test_never_changing_signal(self):
        c = Circuit("const", period_ns=50.0, clock_unit_ns=6.25)
        c.buf("OUT", "STEADY .S0-8", delay=(1.0, 2.0))
        explainer, _ = self._explainer(c)
        hops = explainer.explain("OUT")
        assert any("never changes" in h.via for h in hops)

    def test_unknown_net_rejected(self):
        explainer, _ = self._explainer(chain_circuit())
        with pytest.raises(KeyError):
            explainer.explain("NOPE")

    def test_feedback_loop_terminates(self):
        c = Circuit("fb", period_ns=50.0, clock_unit_ns=6.25)
        c.chg("NEXT", ["Q"], delay=(2.0, 5.0))
        c.reg("Q", clock="CK .P2-3", data="NEXT", delay=(1.5, 4.5))
        explainer, _ = self._explainer(c)
        hops = explainer.explain("NEXT", max_hops=10)
        assert len(hops) <= 10  # bounded despite the loop


class TestExplainViolation:
    def test_figure_3_11_error_explained(self):
        circuit = fig_2_5_register_file()
        result = TimingVerifier(circuit).verify()
        outreg = next(v for v in result.violations if "RAM OUT" in v.signal)
        text = explain_violation(circuit, result, outreg)
        # The late write data is the true culprit of the 47.6 ns settle.
        assert "W DATA" in text
        assert "SETUP time violated" in text

    def test_trace_lines_are_ordered_source_first(self):
        circuit = fig_2_5_register_file()
        result = TimingVerifier(circuit).verify()
        outreg = next(v for v in result.violations if "RAM OUT" in v.signal)
        lines = explain_violation(circuit, result, outreg).splitlines()
        assert "W DATA" in lines[1]
        assert lines[-1].lstrip().startswith("=>")
