"""Tests for the parametric Fmax solver (``repro.sta.parametric``).

Three layers of evidence:

* the :class:`Aff` affine-form algebra is exact and refuses every lossy
  coercion;
* a parametric pass at the design period reproduces the concrete static
  slack numbers record-for-record (the differential that licenses reusing
  the untouched window/slack passes);
* the two independent Fmax oracles — the analytic anchored solve and pure
  engine bisection — agree to within 1 ps, and the boundary is real: the
  engine is clean at Fmax and violating one picosecond below.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import VerifyConfig
from repro.core.verifier import TimingVerifier
from repro.sta import analyze
from repro.sta.parametric import (
    Aff,
    _at_period,
    _record_key,
    _slack_form,
    bisect_fmax,
    run_parametric,
    solve_fmax,
    solve_static_fmax,
)
from repro.workloads import figures
from repro.workloads.synth import SynthConfig, generate


def _engine_clean(circuit, period_ps, config=None, constraints=None):
    with _at_period(circuit, period_ps):
        result = TimingVerifier(
            circuit, config or VerifyConfig(), constraints=constraints
        ).verify()
    return result.ok


def _synth_circuit(chips, seed, alu_fraction=0.0):
    design = generate(
        SynthConfig(chips=chips, seed=seed, alu_fraction=alu_fraction)
    )
    return design.circuit()[0]


class TestAffAlgebra:
    def test_arithmetic_is_exact(self):
        t = Aff(0, 1)
        form = (t * 3 + 250) - (t + 50)
        assert form == Aff(200, 2)
        assert form.at(100) == Fraction(400)

    def test_structural_equality_and_hash(self):
        assert Aff(5, 0) == 5 and hash(Aff(5, 0)) != hash(Aff(5, 1))
        assert Aff(5, 1) != Aff(5, 2)  # same value at some T, different form
        assert len({Aff(1, 2), Aff(1, 2), Aff(1, 3)}) == 2

    def test_constant_comparisons_need_no_context(self):
        assert Aff(3) > Aff(2)
        assert Aff(-1) < 0
        assert Aff(7) % Aff(4) == Aff(3)

    def test_sloped_comparison_outside_context_raises(self):
        with pytest.raises(RuntimeError):
            Aff(0, 1) > 5

    def test_lossy_coercions_raise(self):
        for op in (int, float, round):
            with pytest.raises(TypeError):
                op(Aff(1, 1))

    def test_quadratic_product_rejected(self):
        with pytest.raises(TypeError):
            Aff(0, 1) * Aff(0, 1)


# Designs whose parametric pass must reproduce the concrete slack exactly.
_DIFFERENTIAL = [
    ("fig_2_5", figures.fig_2_5_register_file),
    ("fig_4_1", figures.fig_4_1_correlation),
    ("synth40", lambda: _synth_circuit(40, 3)),
    ("synth80", lambda: _synth_circuit(80, 11)),
]


class TestParametricMatchesConcrete:
    @pytest.mark.parametrize(
        "builder", [b for _, b in _DIFFERENTIAL], ids=[n for n, _ in _DIFFERENTIAL]
    )
    def test_affine_slack_at_design_period_equals_concrete(self, builder):
        circuit = builder()
        period = circuit.timebase.period_ps
        run = run_parametric(circuit, t0=period)
        concrete = {
            _record_key(r): r for r in analyze(circuit).slack
        }
        assert run.records, "parametric pass produced no slack records"
        for rec in run.records:
            twin = concrete[_record_key(rec)]
            if rec.slack_ps is None:
                assert twin.slack_ps is None
                assert (rec.overflow, rec.no_edge) == (
                    twin.overflow, twin.no_edge
                )
                continue
            form = _slack_form(rec.slack_ps)
            assert form.at(period) == twin.slack_ps, (
                f"{_record_key(rec)}: affine {form.a}+{form.b}*T at "
                f"T={period} != concrete {twin.slack_ps}"
            )


class TestHandDerivedFmax:
    def test_shifter_fmax_is_28100_ps(self):
        """First-principles Fmax of examples/designs/shifter.scald.

        The critical path launches at the MAIN CLK rise (clock unit 2 =
        T/4, trimmed distribution, no wire delay) and must make the *next*
        cycle's rise at T + T/4:

          inreg REG          4.5 ns   (clock-to-out max)
          wire               2.0 ns   (default max)
          slow stage: CHG    6.5 ns + 2.0 wire
                      MUX2   3.3 ns + 2.0 wire
          fast stage: MUX2   3.3 ns + 2.0 wire   (one-hot cases: at most
                                                  one stage routes slow)
          outreg setup       2.5 ns
          ------------------------
          total             28.1 ns

        slack(T) = (T + T/4) - (T/4 + 25.6) - 2.5 = T - 28.1 ns, so the
        smallest clean period is exactly 28 100 ps.
        """
        from repro.hdl.expander import MacroExpander

        circuit = MacroExpander.from_file(
            "examples/designs/shifter.scald"
        ).expand()
        analytic = solve_fmax(circuit)
        oracle = bisect_fmax(circuit)
        assert analytic.period_limited and oracle.period_limited
        assert analytic.period_ps == oracle.period_ps == 28100
        assert analytic.binding is not None
        assert analytic.binding.component == "outreg/su"
        assert analytic.slope == 1  # slack gains 1 ps per ps of period

    def test_fig_2_5_fmax_is_63998_ps(self):
        """The register file is bound by the RAM address check, slope 1/8.

        ``rf/su addr`` guards ADR around the write-enable pulse.  Every
        term of the guard (AND-gate delay, wire, the 3.5/1.0 ns
        setup/hold) is constant, while the separation between the ADR
        select flip (clock unit 4 = T/2) and the WE CLK fall (unit 3 =
        3T/8) grows as T/8 — one picosecond per eight of period.  Solving
        the binding inequality gives T/8 >= 8.0 ns, i.e. T = 64 000 ps up
        to the integer rounding of the clock-unit edges; the engine's
        rounded edges first align two picoseconds earlier, at 63 998, and
        both oracles must land on that exact boundary.
        """
        circuit = figures.fig_2_5_register_file()
        analytic = solve_fmax(circuit)
        oracle = bisect_fmax(circuit)
        assert analytic.period_ps == oracle.period_ps == 63998
        assert analytic.binding is not None
        assert analytic.binding.component == "rf/su addr"
        assert analytic.binding.signal == "ADR"

    def test_fig_2_6_is_not_period_limited(self):
        """Pure combinational case-analysis circuit: no period-binding
        check, clean at every probed period — both oracles must say so."""
        circuit = figures.fig_2_6_case_analysis()
        analytic = solve_fmax(circuit)
        oracle = bisect_fmax(circuit)
        assert not analytic.period_limited and not oracle.period_limited
        assert analytic.period_ps is None and oracle.period_ps is None

    def test_fig_1_5_fails_at_every_period(self):
        """The gated-clock runt pulse can be arbitrarily short at any
        period (ENABLE may change anywhere in its window), so slowing the
        clock never fixes it: period-independent failure on both oracles."""
        circuit = figures.fig_1_5_gated_clock()
        analytic = solve_fmax(circuit)
        oracle = bisect_fmax(circuit)
        assert analytic.period_limited and oracle.period_limited
        assert analytic.period_ps is None and oracle.period_ps is None


class TestBoundaryIsReal:
    @pytest.mark.parametrize(
        "builder",
        [figures.fig_2_5_register_file, lambda: _synth_circuit(60, 1)],
        ids=["fig_2_5", "synth60"],
    )
    def test_engine_clean_at_fmax_violating_below(self, builder):
        circuit = builder()
        res = solve_fmax(circuit)
        assert res.period_limited and res.period_ps is not None
        assert _engine_clean(circuit, res.period_ps)
        assert not _engine_clean(circuit, res.period_ps - 1)


class TestOracleAgreement:
    @settings(max_examples=6, deadline=None)
    @given(
        chips=st.integers(min_value=20, max_value=70),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_analytic_equals_bisection_within_1ps(self, chips, seed):
        circuit = _synth_circuit(chips, seed)
        analytic = solve_fmax(circuit)
        oracle = bisect_fmax(circuit)
        assert analytic.period_limited == oracle.period_limited
        assert (analytic.period_ps is None) == (oracle.period_ps is None)
        if analytic.period_ps is not None:
            assert abs(analytic.period_ps - oracle.period_ps) <= 1

    def test_alu_mix_agrees_too(self):
        circuit = _synth_circuit(60, 1, alu_fraction=0.04)
        analytic = solve_fmax(circuit)
        oracle = bisect_fmax(circuit)
        assert analytic.period_ps == oracle.period_ps


class TestStaticSoundness:
    @pytest.mark.parametrize(
        "builder",
        [lambda: _synth_circuit(60, 1), lambda: _synth_circuit(120, 7)],
        ids=["synth60", "synth120"],
    )
    def test_static_root_never_below_engine_boundary(self, builder):
        """Constant pessimism only raises the static root: T_s >= T*."""
        circuit = builder()
        static = solve_static_fmax(circuit)
        engine = bisect_fmax(circuit)
        assert static.period_limited and engine.period_limited
        assert static.period_ps >= engine.period_ps
        # And the static root really is statically meaningful: the engine
        # must be clean there (static-positive implies engine-clean).
        assert _engine_clean(circuit, static.period_ps)
