"""Tests for the periodic waveform representation (section 2.8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import (
    CHANGE,
    FALL,
    ONE,
    RISE,
    STABLE,
    UNKNOWN,
    ZERO,
    Value,
)
from repro.core.waveform import Waveform

P = 50_000  # the 50 ns cycle used throughout Chapter III, in picoseconds


def clock(period=P, high=(20_000, 30_000), skew=(0, 0)):
    return Waveform.from_intervals(period, ZERO, [(*high, ONE)], skew=skew)


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

value_st = st.sampled_from(list(Value))


@st.composite
def waveform_st(draw, period=P, max_segments=6):
    n = draw(st.integers(min_value=1, max_value=max_segments))
    cutpoints = draw(
        st.lists(
            st.integers(min_value=1, max_value=period - 1),
            min_size=n - 1,
            max_size=n - 1,
            unique=True,
        )
    )
    cuts = [0, *sorted(cutpoints), period]
    values = [draw(value_st) for _ in range(n)]
    skew_late = draw(st.integers(min_value=0, max_value=5_000))
    skew_early = -draw(st.integers(min_value=0, max_value=5_000))
    return Waveform(
        period,
        [(v, hi - lo) for v, lo, hi in zip(values, cuts, cuts[1:])],
        skew=(skew_early, skew_late),
    )


class TestConstruction:
    def test_constant(self):
        wf = Waveform.constant(P, STABLE)
        assert wf.is_constant
        assert wf.value_at(0) is STABLE
        assert wf.value_at(P - 1) is STABLE

    def test_segments_must_cover_period(self):
        with pytest.raises(ValueError):
            Waveform(P, [(ZERO, P - 1)])

    def test_zero_width_segments_dropped(self):
        wf = Waveform(P, [(ZERO, 0), (ONE, P)])
        assert wf.segments == ((ONE, P),)

    def test_adjacent_equal_merged(self):
        wf = Waveform(P, [(ZERO, 10_000), (ZERO, 10_000), (ONE, 30_000)])
        assert wf.segments == ((ZERO, 20_000), (ONE, 30_000))

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            Waveform(P, [(ZERO, -5), (ONE, P + 5)])

    def test_bad_skew_rejected(self):
        with pytest.raises(ValueError):
            Waveform.constant(P, ZERO).with_skew((5, 10))

    def test_immutability(self):
        wf = Waveform.constant(P, ZERO)
        with pytest.raises(AttributeError):
            wf.period = 1

    def test_from_intervals_wrapping(self):
        """A 'stable 4 to 9' assertion on an 8-unit cycle wraps to unit 1
        (section 3.2's READ ADR .S4-9 example)."""
        unit = 6_250
        wf = Waveform.from_intervals(P, CHANGE, [(4 * unit, 9 * unit, STABLE)])
        assert wf.value_at(0) is STABLE  # inside the wrapped part
        assert wf.value_at(2 * unit) is CHANGE
        assert wf.value_at(5 * unit) is STABLE

    def test_from_intervals_later_overrides(self):
        wf = Waveform.from_intervals(
            P, ZERO, [(0, 30_000, ONE), (10_000, 20_000, STABLE)]
        )
        assert wf.value_at(5_000) is ONE
        assert wf.value_at(15_000) is STABLE
        assert wf.value_at(25_000) is ONE


class TestQueries:
    def test_value_at_wraps(self):
        wf = clock()
        assert wf.value_at(25_000 + P) is ONE
        assert wf.value_at(-P + 25_000) is ONE

    def test_boundaries_include_wrap(self):
        wf = Waveform(P, [(ONE, 10_000), (ZERO, 40_000)])
        bounds = wf.boundaries()
        assert (0, ZERO, ONE) in bounds
        assert (10_000, ONE, ZERO) in bounds

    def test_no_wrap_boundary_when_equal(self):
        wf = clock()
        assert all(t != 0 for t, _, _ in wf.boundaries())

    def test_duration_of(self):
        wf = clock()
        assert wf.duration_of(ONE) == 10_000
        assert wf.duration_of(ZERO) == 40_000

    def test_values_present(self):
        assert clock().values_present() == {ZERO, ONE}

    def test_is_fully_unknown(self):
        assert Waveform.constant(P, UNKNOWN).is_fully_unknown
        assert not clock().is_fully_unknown


class TestRotationAndDelay:
    def test_rotation_shifts_values(self):
        wf = clock().rotated(5_000)
        assert wf.value_at(25_000) is ONE
        assert wf.value_at(34_000) is ONE
        assert wf.value_at(20_000) is ZERO

    def test_rotation_by_period_is_identity(self):
        wf = clock()
        assert wf.rotated(P) == wf

    @given(waveform_st(), st.integers(min_value=0, max_value=2 * P))
    def test_rotation_pointwise(self, wf, dt):
        rot = wf.rotated(dt)
        for t in (0, 1, 12_345, P - 1):
            assert rot.value_at(t) == wf.value_at(t - dt)

    @given(waveform_st(), st.integers(0, P), st.integers(0, P))
    @settings(max_examples=50)
    def test_rotation_composes(self, wf, a, b):
        assert wf.rotated(a).rotated(b) == wf.rotated(a + b)

    def test_delay_shifts_by_min_and_adds_skew(self):
        """Figure 2-8: a gate with 5/10 ns delay shifts the value list by
        the minimum delay and puts the 5 ns difference in the skew field."""
        wf = clock().delayed(5_000, 10_000)
        assert wf.value_at(26_000) is ONE
        assert wf.skew == (0, 5_000)
        # Pulse width information is preserved exactly.
        assert wf.duration_of(ONE) == 10_000

    def test_delay_accumulates_skew(self):
        wf = clock().delayed(1_000, 2_000).delayed(3_000, 7_000)
        assert wf.skew == (0, 5_000)
        assert wf.value_at(24_500) is ONE

    def test_delay_rejects_bad_range(self):
        with pytest.raises(ValueError):
            clock().delayed(10, 5)

    def test_zero_delay_is_identity(self):
        wf = clock()
        assert wf.delayed(0, 0) == wf


class TestMaterialize:
    def test_figure_2_9(self):
        """The worked example of section 2.8: output Z of a 5/10 ns gate with
        its skew folded in shows RISE for 25-30 ns and FALL for 35-40 ns."""
        z = clock().delayed(5_000, 10_000).materialized()
        assert z.skew == (0, 0)
        assert z.value_at(24_000) is ZERO
        assert z.value_at(27_000) is RISE
        assert z.value_at(32_000) is ONE
        assert z.value_at(37_000) is FALL
        assert z.value_at(42_000) is ZERO

    def test_no_skew_is_identity(self):
        wf = clock()
        assert wf.materialized() is wf

    def test_constant_discards_skew(self):
        wf = Waveform.constant(P, STABLE).with_skew((-500, 500))
        assert wf.materialized() == Waveform.constant(P, STABLE)

    def test_symmetric_clock_skew(self):
        """A precision clock with +-1 ns skew (section 3.3) develops 2 ns
        transition windows centred on its nominal edges."""
        wf = clock(skew=(-1_000, 1_000)).materialized()
        assert wf.value_at(19_500) is RISE
        assert wf.value_at(20_500) is RISE
        assert wf.value_at(21_500) is ONE
        assert wf.value_at(29_500) is FALL

    def test_stable_change_boundary_widens_to_change(self):
        wf = Waveform.from_intervals(
            P, STABLE, [(10_000, 20_000, CHANGE)], skew=(0, 2_000)
        ).materialized()
        assert wf.value_at(11_000) is CHANGE
        assert wf.value_at(21_000) is CHANGE  # widened by the late skew
        assert wf.value_at(23_000) is STABLE

    def test_overlapping_windows_merge_to_change(self):
        """A 4 ns pulse through a gate with 6 ns of delay uncertainty: the
        widened rise and fall overlap, so the order is unknown - CHANGE."""
        wf = Waveform.from_intervals(P, ZERO, [(10_000, 14_000, ONE)], skew=(0, 6_000))
        folded = wf.materialized()
        # Rise window is [10, 16], fall window is [14, 20]; their overlap
        # [14, 16] collapses to CHANGE.
        assert folded.value_at(13_000) is RISE
        assert folded.value_at(15_000) is CHANGE
        assert folded.value_at(17_000) is FALL

    @given(waveform_st())
    @settings(max_examples=100)
    def test_materialize_idempotent(self, wf):
        m = wf.materialized()
        assert m.materialized() == m

    @given(waveform_st())
    @settings(max_examples=100)
    def test_materialize_never_invents_stability(self, wf):
        """Folding skew may only widen uncertainty, never shrink it: any
        time instant that was changing nominally is still not reported as a
        known constant level afterwards (soundness)."""
        m = wf.materialized()
        for start, end, value in wf.iter_segments():
            if value in (CHANGE, RISE, FALL):
                probe = (start + end) // 2
                assert m.value_at(probe) in (CHANGE, RISE, FALL, UNKNOWN)


class TestEdgeWindows:
    def test_sharp_clock_edges(self):
        wf = clock()
        assert wf.rising_windows() == [(20_000, 20_000)]
        assert wf.falling_windows() == [(30_000, 30_000)]

    def test_skewed_clock_edges(self):
        wf = clock(skew=(-1_000, 1_000))
        assert wf.rising_windows() == [(19_000, 21_000)]
        assert wf.falling_windows() == [(29_000, 31_000)]

    def test_delayed_clock_edge_windows(self):
        wf = clock().delayed(5_000, 10_000)
        assert wf.rising_windows() == [(25_000, 30_000)]
        assert wf.falling_windows() == [(35_000, 40_000)]

    def test_two_phase_clock(self):
        wf = Waveform.from_intervals(
            P, ZERO, [(5_000, 10_000, ONE), (30_000, 35_000, ONE)]
        )
        assert wf.rising_windows() == [(5_000, 5_000), (30_000, 30_000)]

    def test_wrapping_edge_window(self):
        """A clock high across the period boundary has its falling edge
        early in the cycle and its rising edge late."""
        wf = Waveform.from_intervals(P, ZERO, [(45_000, 55_000, ONE)])
        assert wf.rising_windows() == [(45_000, 45_000)]
        assert wf.falling_windows() == [(5_000, 5_000)]

    def test_change_region_is_ambiguous(self):
        wf = Waveform.from_intervals(P, ZERO, [(10_000, 15_000, CHANGE)])
        assert (10_000, 15_000) in wf.rising_windows()
        assert (10_000, 15_000) in wf.falling_windows()

    def test_constant_has_no_edges(self):
        assert Waveform.constant(P, ONE).rising_windows() == []


class TestLevelRuns:
    def test_single_pulse(self):
        assert clock().level_runs(ONE) == [(20_000, 30_000)]
        assert clock().level_runs(ZERO) == [(30_000, 70_000)]

    def test_wrapping_run_reported_once(self):
        wf = Waveform.from_intervals(P, ZERO, [(45_000, 55_000, ONE)])
        assert wf.level_runs(ONE) == [(45_000, 55_000)]

    def test_constant_run_covers_period(self):
        assert Waveform.constant(P, ONE).level_runs(ONE) == [(0, P)]

    def test_skew_does_not_shrink_nominal_pulse(self):
        """The reason the skew field exists (section 2.8): a delayed pulse's
        nominal width is unchanged, avoiding false minimum-pulse-width
        errors."""
        wf = clock().delayed(5_000, 10_000)
        (start, end), = wf.level_runs(ONE)
        assert end - start == 10_000

    def test_folded_pulse_does_shrink(self):
        """And the contrast: once skew is folded into the values, the
        guaranteed-high region narrows by the skew amount."""
        wf = clock().delayed(5_000, 10_000).materialized()
        (start, end), = wf.level_runs(ONE)
        assert end - start == 5_000


class TestStability:
    def test_stable_everywhere(self):
        wf = Waveform.constant(P, STABLE)
        assert wf.is_stable_in(0, P)

    def test_instability_reports_change_segment(self):
        wf = Waveform.from_intervals(P, STABLE, [(10_000, 20_000, CHANGE)])
        bad = wf.instability_in(5_000, 25_000)
        assert bad == [(10_000, 20_000, CHANGE)]

    def test_instability_clips_to_window(self):
        wf = Waveform.from_intervals(P, STABLE, [(10_000, 20_000, CHANGE)])
        bad = wf.instability_in(15_000, 25_000)
        assert bad == [(15_000, 20_000, CHANGE)]

    def test_instantaneous_transition_inside_window(self):
        wf = clock()
        bad = wf.instability_in(19_000, 21_000)
        assert (20_000, 20_000, RISE) in bad

    def test_transition_at_window_edge_not_counted(self):
        """Data may change exactly at the end of a hold window."""
        wf = clock()
        assert wf.is_stable_in(20_000 - 5_000, 20_000)

    def test_window_wraps_across_period(self):
        wf = Waveform.from_intervals(P, STABLE, [(2_000, 6_000, CHANGE)])
        bad = wf.instability_in(45_000, 45_000 + 10_000)
        assert bad == [(52_000, 55_000, CHANGE)]

    def test_skew_counts_against_stability(self):
        wf = Waveform.from_intervals(
            P, STABLE, [(10_000, 20_000, CHANGE)], skew=(0, 3_000)
        )
        assert not wf.is_stable_in(21_000, 22_000)
        assert wf.is_stable_in(23_000, 30_000)

    def test_window_longer_than_period_saturates(self):
        wf = clock()
        assert len(wf.instability_in(0, 10 * P)) == len(wf.instability_in(0, P))

    def test_rejects_reversed_window(self):
        with pytest.raises(ValueError):
            clock().instability_in(10, 5)


class TestEquality:
    def test_structural_equality(self):
        a = Waveform(P, [(ZERO, 20_000), (ONE, 10_000), (ZERO, 20_000)])
        assert a == clock()

    def test_skew_matters(self):
        assert clock() != clock().with_skew((0, 1))

    def test_eval_str_matters(self):
        assert clock() != clock().with_eval_str("HZ")

    def test_hashable(self):
        assert len({clock(), clock(), clock(skew=(0, 1))}) == 2


class TestPresentation:
    def test_describe_matches_listing_style(self):
        """Figure 3-10's first entry: stable at cycle start, changing at
        0.5 ns, stable at 5.5 ns, changing at 25.5 ns, stable at 30.5 ns."""
        wf = Waveform.from_intervals(
            P,
            STABLE,
            [(500, 5_500, CHANGE), (25_500, 30_500, CHANGE)],
        )
        assert wf.describe() == "S 0.5 C 5.5 S 25.5 C 30.5 S"

    def test_repr_compact(self):
        assert "0:20000" in repr(clock())


class TestMapped:
    def test_not_mapping(self):
        from repro.core.values import value_not

        wf = clock().mapped(value_not)
        assert wf.value_at(25_000) is ZERO
        assert wf.value_at(5_000) is ONE

    def test_mapped_keeps_skew(self):
        from repro.core.values import value_not

        wf = clock().with_skew((-100, 100)).mapped(value_not)
        assert wf.skew == (-100, 100)


# ---------------------------------------------------------------------------
# sorted-event sweep vs the seed's rank-scan painting (round-trip oracles)
# ---------------------------------------------------------------------------

intervals_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2 * P - 1),
        st.integers(min_value=0, max_value=P),
        value_st,
    ).map(lambda t: (t[0], t[0] + t[1], t[2])),
    max_size=6,
)


def _rank_scan_paint(period, base_value_at, intervals, extra_cuts=()):
    """The seed implementation: O(cuts x pieces) highest-rank covering scan."""
    from repro.core.timeline import wrap_interval

    pieces = []
    vals = []
    for rank, (start, end, value) in enumerate(intervals):
        vals.append(value)
        for lo, hi in wrap_interval(start, end, period):
            pieces.append((lo, hi, rank))
    cuts = sorted(
        {0, period, *extra_cuts, *(p[0] for p in pieces), *(p[1] for p in pieces)}
    )
    segs = []
    for lo, hi in zip(cuts, cuts[1:]):
        best = -1
        for plo, phi, rank in pieces:
            if plo <= lo and hi <= phi and rank > best:
                best = rank
        segs.append((vals[best] if best >= 0 else base_value_at(lo), hi - lo))
    return segs


class TestSweepOracles:
    @settings(max_examples=200)
    @given(value_st, intervals_st)
    def test_from_intervals_matches_rank_scan(self, base, intervals):
        got = Waveform.from_intervals(P, base, intervals)
        want = Waveform(P, _rank_scan_paint(P, lambda _t: base, intervals))
        assert got == want

    @settings(max_examples=200)
    @given(waveform_st(), intervals_st)
    def test_overlaid_matches_rank_scan(self, wf, intervals):
        got = wf.overlaid(intervals)
        want_segs = _rank_scan_paint(
            P, wf.value_at, intervals, extra_cuts=wf._starts
        )
        want = Waveform(P, want_segs, skew=wf.skew, eval_str=wf.eval_str)
        assert got == want

    @settings(max_examples=200)
    @given(waveform_st())
    def test_materialized_matches_covering_scan(self, wf):
        from repro.core.timeline import wrap_interval
        from repro.core.values import merge_overlay, transition_value

        got = wf.materialized()
        if not wf.has_skew:
            assert got is wf
            return
        if wf.is_constant:
            assert got == wf.with_skew((0, 0))
            return
        early, late = wf.skew
        overlays = []
        for t, before, after in wf.boundaries():
            ov = transition_value(before, after)
            for lo, hi in wrap_interval(t + early, t + late, P):
                overlays.append((lo, hi, ov))
        cuts = sorted(
            {0, P, *wf._starts,
             *(o[0] for o in overlays), *(o[1] for o in overlays)}
        )
        segs = []
        for lo, hi in zip(cuts, cuts[1:]):
            covering = [v for plo, phi, v in overlays if plo <= lo and hi <= phi]
            if covering:
                value = covering[0]
                for v in covering[1:]:
                    value = merge_overlay(value, v)
            else:
                value = wf.value_at(lo)
            segs.append((value, hi - lo))
        want = Waveform(P, segs, skew=(0, 0), eval_str=wf.eval_str)
        assert got == want

    @settings(max_examples=100)
    @given(waveform_st())
    def test_cached_derived_forms_are_stable(self, wf):
        """boundaries()/materialized()/hash are cached on the instance."""
        assert wf.boundaries() is wf.boundaries()
        assert wf.materialized() is wf.materialized()
        assert hash(wf) == hash(wf)

    @settings(max_examples=100)
    @given(waveform_st(), st.integers(min_value=-P, max_value=2 * P))
    def test_value_at_bisect_matches_linear_scan(self, wf, t):
        tm = t % P
        acc = 0
        expected = wf.segments[-1][0]
        for value, width in wf.segments:
            if acc <= tm < acc + width:
                expected = value
                break
            acc += width
        assert wf.value_at(t) is expected


class TestPickle:
    """Regression: pickle.loads used to die with 'Waveform is immutable'.

    The __slots__ + __setattr__ immutability guard rejected pickle's
    default per-slot state restore; __reduce__ now rebuilds through the
    constructor and re-enters the intern table.
    """

    def test_round_trip_restores_equal_value(self):
        import pickle

        wf = clock(skew=(-1_000, 2_000)).with_eval_str("WH")
        restored = pickle.loads(pickle.dumps(wf))
        assert restored == wf
        assert restored.period == wf.period
        assert restored.segments == wf.segments
        assert restored.skew == wf.skew
        assert restored.eval_str == wf.eval_str

    def test_round_trip_reenters_intern_table(self):
        """An unpickled waveform shares identity with an equal interned
        instance, so the engine's identity-first convergence test stays
        sound across process boundaries."""
        import pickle

        wf = clock(high=(5_000, 15_000)).intern()
        restored = pickle.loads(pickle.dumps(wf))
        assert restored is wf

    def test_restored_instance_is_fully_functional(self):
        import pickle

        wf = clock(skew=(-500, 500))
        restored = pickle.loads(pickle.dumps(wf))
        assert restored.materialized() == wf.materialized()
        assert restored.boundaries() == wf.boundaries()
        assert hash(restored) == hash(wf)
        assert restored.rising_windows() == wf.rising_windows()

    @settings(max_examples=100, deadline=None)
    @given(waveform_st())
    def test_round_trip_property(self, wf):
        import pickle

        for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
            restored = pickle.loads(pickle.dumps(wf, protocol))
            assert restored == wf
