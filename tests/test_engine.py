"""Tests for the event-driven evaluation engine (section 2.9)."""

import pytest

from repro import Circuit, EXACT, OscillationError, TimingVerifier, VerifyConfig
from repro.core.engine import Engine
from repro.core.values import CHANGE, ONE, STABLE, UNKNOWN, ZERO
from repro.core.violations import ViolationKind


def circuit(**kw):
    return Circuit("t", period_ns=50.0, clock_unit_ns=6.25, **kw)


def run(c, config=EXACT):
    return TimingVerifier(c, config).verify()


class TestInitialization:
    def test_clock_assertion_pins_value(self):
        c = circuit()
        c.buf("OUT", "CK .P2-3")
        e = Engine(c, EXACT)
        e.initialize()
        wf = e.waveform_of("CK .P2-3")
        assert wf.value_at(13_000) is ONE
        assert wf.value_at(0) is ZERO

    def test_stable_assertion_initializes_interface_signal(self):
        c = circuit()
        c.buf("OUT", "D .S0-6")
        e = Engine(c, EXACT)
        e.initialize()
        wf = e.waveform_of("D .S0-6")
        assert wf.value_at(10_000) is STABLE
        assert wf.value_at(40_000) is CHANGE

    def test_driven_nets_start_unknown(self):
        c = circuit()
        c.buf("OUT", "D .S0-6")
        e = Engine(c, EXACT)
        e.initialize()
        assert e.waveform_of("OUT").is_fully_unknown

    def test_unasserted_undriven_assumed_stable_and_xrefed(self):
        """Section 2.5: undefined signals with no assertions are taken to
        be always stable and put on a special cross-reference listing."""
        c = circuit()
        c.buf("OUT", "MYSTERY INPUT")
        e = Engine(c, EXACT)
        e.initialize()
        assert e.waveform_of("MYSTERY INPUT") == e.waveform_of("MYSTERY INPUT").constant(
            c.period_ps, STABLE
        )
        assert "MYSTERY INPUT" in e.xref_assumed_stable

    def test_supply_rails(self):
        c = circuit()
        c.gate("AND", "OUT", ["GND", "VCC"])
        e = Engine(c, EXACT)
        e.initialize()
        assert e.waveform_of("GND").value_at(0) is ZERO
        assert e.waveform_of("VCC").value_at(0) is ONE

    def test_precision_vs_nonprecision_default_skew(self):
        """.P clocks default to ±1 ns skew, .C clocks to ±5 ns
        (section 3.3's S-1 design rules)."""
        c = circuit()
        c.gate("AND", "OUT", ["PC .P2-3", "NC .C2-3"])
        e = Engine(c, VerifyConfig())
        e.initialize()
        assert e.waveform_of("PC .P2-3").skew == (-1_000, 1_000)
        assert e.waveform_of("NC .C2-3").skew == (-5_000, 5_000)


class TestFixedPoint:
    def test_combinational_chain_converges(self):
        c = circuit()
        c.gate("AND", "N1", ["A .S0-6", "B .S0-6"], delay=(1.0, 2.0))
        c.gate("OR", "N2", ["N1", "C .S0-6"], delay=(1.0, 2.0))
        c.gate("XOR", "N3", ["N2", "N1"], delay=(1.0, 2.0))
        r = run(c)
        assert not r.waveform("N3").is_fully_unknown
        assert r.stats.events >= 3

    def test_register_feedback_converges(self):
        """A counter-style feedback loop through a register reaches a fixed
        point thanks to the STABLE capture rule."""
        c = circuit()
        c.chg("NEXT", ["Q"], delay=(2.0, 5.0))
        c.reg("Q", clock="CK .P2-3", data="NEXT", delay=(1.5, 4.5))
        r = run(c)
        q = r.waveform("Q")
        assert q.value_at(0) is STABLE
        assert q.value_at(15_000) is CHANGE

    def test_combinational_loop_raises(self):
        c = circuit()
        c.gate("NOT", "B", ["A"], delay=(1.0, 1.0), name="inv1")
        c.gate("NOT", "A", ["B"], delay=(1.0, 1.5), name="inv2")
        with pytest.raises(OscillationError, match="feedback"):
            run(c)

    def test_event_counting(self):
        c = circuit()
        c.gate("AND", "N1", ["A .S0-6", "B .S0-6"])
        r = run(c)
        # One event: N1 acquiring its value (inputs are fixed assertions).
        assert r.stats.events == 1

    def test_reconvergent_fanout(self):
        c = circuit()
        c.gate("NOT", "NA", ["A .S0-4"], delay=(1.0, 2.0))
        c.gate("AND", "X", ["A .S0-4", "NA"], delay=(1.0, 2.0))
        r = run(c)
        x = r.waveform("X")
        # Both A and NOT A are stable mid-window; NA's wrap-around change
        # (it settles ~3 ns into the cycle) keeps t=0 changing.
        assert x.value_at(10_000) is STABLE
        assert x.value_at(0) is CHANGE


class TestWireDelays:
    def test_default_wire_delay_applied(self):
        c = circuit()
        c.buf("OUT", "D .S1-7", delay=(0.0, 0.0))
        r = run(c, VerifyConfig(default_wire_delay_ns=(0.0, 2.0),
                                precision_clock_skew_ns=(0, 0),
                                nonprecision_clock_skew_ns=(0, 0)))
        assert r.waveform("OUT").skew == (0, 2_000)

    def test_net_override(self):
        c = circuit()
        d = c.net("D .S1-7")
        d.wire_delay_ps = (0, 6_000)
        c.buf("OUT", d, delay=(0.0, 0.0))
        r = run(c, VerifyConfig())
        assert r.waveform("OUT").skew == (0, 6_000)

    def test_load_dependent_wire_rule(self):
        """Section 3.3's refined rule: more loads, more maximum delay."""
        config = VerifyConfig(
            default_wire_delay_ns=(0.0, 2.0),
            precision_clock_skew_ns=(0, 0),
            nonprecision_clock_skew_ns=(0, 0),
            wire_delay_per_load_ns=0.5,
        )
        c = circuit()
        c.buf("LIGHT", "D .S1-7", delay=(0.0, 0.0), name="b1")
        c.buf("HEAVY A", "E .S1-7", delay=(0.0, 0.0), name="b2")
        c.buf("HEAVY B", "E .S1-7", delay=(0.0, 0.0), name="b3")
        c.buf("HEAVY C", "E .S1-7", delay=(0.0, 0.0), name="b4")
        r = run(c, config)
        assert r.waveform("LIGHT").skew == (0, 2_000)  # one load: base rule
        assert r.waveform("HEAVY A").skew == (0, 3_000)  # 2 extra loads

    def test_per_load_rule_never_touches_explicit_delays(self):
        from dataclasses import replace

        config = VerifyConfig(wire_delay_per_load_ns=1.0)
        c = circuit()
        d = c.net("D .S1-7")
        d.wire_delay_ps = (0, 500)
        c.buf("O1", d, delay=(0.0, 0.0), name="b1")
        c.buf("O2", d, delay=(0.0, 0.0), name="b2")
        r = run(c, config)
        assert r.waveform("O1").skew == (0, 500)

    def test_connection_override_beats_net(self):
        from repro.netlist import Connection

        c = circuit()
        d = c.net("D .S1-7")
        d.wire_delay_ps = (0, 6_000)
        c.add("b", "BUF", {"I": Connection(net=d, wire_delay_ps=(0, 0)), "OUT": "OUT"})
        r = run(c, VerifyConfig())
        assert r.waveform("OUT").skew == (0, 0)


class TestDirectives:
    def _gated_clock(self, directives, enable="VCC"):
        c = circuit()
        clk_in = f"CK .P2-3 {directives}" if directives else "CK .P2-3"
        c.gate("AND", "GCLK", [clk_in, enable], delay=(1.0, 2.9), name="g")
        c.min_pulse_width("GCLK", min_high=4.0)
        return c

    def test_plain_gate_adds_delay(self):
        r = run(self._gated_clock(""))
        wf = r.waveform("GCLK")
        assert wf.value_at(14_000) is ONE  # shifted by the 1.0 min delay
        assert wf.skew == (0, 1_900)

    def test_unknown_level_enable_hides_the_clock(self):
        """Without the enabling assumption, 1 AND STABLE is only STABLE:
        the clock cannot be checked through the gate.  This is precisely
        the problem the &A/&H directives solve (section 2.6)."""
        r = run(self._gated_clock("", enable="EN .S0-8"))
        wf = r.waveform("GCLK")
        assert wf.value_at(14_000) is STABLE

    def test_z_zeroes_gate_and_wire(self):
        """&Z: the clock timing refers to the gate output (section 2.6)."""
        r = run(self._gated_clock("&Z"))
        wf = r.waveform("GCLK")
        assert wf.value_at(13_000) is ONE
        assert wf.skew == (0, 0)
        assert wf.rising_windows() == [(12_500, 12_500)]

    def test_a_checks_and_assumes_enabling(self):
        c = circuit()
        c.gate("AND", "GCLK", ["CK .P2-3 &A", "EN .S3-6"], name="g")
        r = run(c)
        # The enable is assumed enabling: the clock propagates...
        assert r.waveform("GCLK").value_at(15_000) is ONE
        # ...and the control's instability while the clock is high is an error.
        assert any(
            v.kind is ViolationKind.GATING_STABILITY for v in r.violations
        )

    def test_a_with_stable_control_is_clean(self):
        c = circuit()
        c.gate("AND", "GCLK", ["CK .P2-3 &A", "EN .S0-8"], name="g")
        r = run(c)
        assert r.ok

    def test_h_combines_z_and_a(self):
        c = circuit()
        c.gate("AND", "GCLK", ["CK .P2-3 &H", "EN .S3-6"], delay=(1.0, 2.9), name="g")
        r = run(c)
        assert r.waveform("GCLK").skew == (0, 0)  # Z effect
        assert any(v.kind is ViolationKind.GATING_STABILITY for v in r.violations)

    def test_w_zeroes_wire_only(self):
        c = circuit()
        c.gate("BUF", "OUT", ["D .S1-7 &W"], delay=(1.0, 3.0), name="g")
        r = run(c, VerifyConfig())
        assert r.waveform("OUT").skew == (0, 2_000)  # gate skew only, no wire

    def test_directive_string_propagates_level_by_level(self):
        """'&HZ': H governs the first gate, Z the second (section 2.6)."""
        c = circuit()
        c.gate("AND", "L1", ["CK .P2-3 &ZZ", "VCC"], delay=(1.0, 2.0), name="g1")
        c.gate("AND", "L2", ["L1", "VCC"], delay=(1.0, 2.0), name="g2")
        c.gate("AND", "L3", ["L2", "VCC"], delay=(1.0, 2.0), name="g3")
        r = run(c)
        # Two levels zeroed; the third level's delay applies.
        assert r.waveform("L2").skew == (0, 0)
        wf = r.waveform("L3")
        assert wf.skew == (0, 1_000)
        assert wf.value_at(14_000) is ONE

    def test_or_gate_enabling_level_is_zero(self):
        c = circuit()
        c.gate("OR", "GCLK", ["CK .P2-3 &A", "EN .S0-8"], name="g")
        r = run(c)
        # EN assumed 0 for an OR: the clock passes through.
        assert r.waveform("GCLK").value_at(15_000) is ONE


class TestCaseAnalysis:
    def test_case_maps_stable_to_constant(self):
        c = circuit()
        c.buf("OUT", "SEL .S0-8")
        c.add_case_by_name({"SEL .S0-8": 1})
        r = run(c)
        assert r.waveform("SEL .S0-8").value_at(0) is ONE

    def test_case_on_driven_signal(self):
        """Section 2.7.1: mapping applies wherever the circuit would set
        the signal to STABLE — including computed signals."""
        c = circuit()
        c.gate("AND", "SEL", ["A .S0-8", "B .S0-8"])
        c.add_case_by_name({"SEL": 0})
        r = run(c)
        assert r.waveform("SEL").value_at(0) is ZERO

    def test_incremental_reevaluation(self):
        """Between cases only affected parts re-evaluate (section 2.7)."""
        c = circuit()
        c.buf("X1", "UNTOUCHED .S0-6", delay=(1.0, 1.0))
        c.buf("X2", "X1", delay=(1.0, 1.0))
        c.mux("OUT", selects=["SEL .S0-8"], inputs=["A .S0-8", "B .S0-8"])
        c.add_case_by_name({"SEL .S0-8": 0})
        c.add_case_by_name({"SEL .S0-8": 1})
        r = run(c)
        assert len(r.cases) == 2
        # The second case re-evaluates the mux only, not the buffer chain.
        assert r.cases[1].events < r.cases[0].events

    def test_unknown_case_signal_rejected(self):
        c = circuit()
        c.buf("OUT", "A .S0-6")
        c.add_case_by_name({"NOT A REAL SIGNAL": 1})
        # The net now exists (created by add_case), but floats undriven: it
        # verifies as a constant; a *typo* against a truly unknown name is
        # caught at engine level.
        e = Engine(c, EXACT)
        with pytest.raises(KeyError):
            e._build_case_map({"TYPO": 1})

    def test_violations_tagged_with_case(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S3-6", delay=(1.0, 2.0))
        c.setup_hold("D .S3-6", "CK .P2-3", setup=2.5, hold=1.5)
        c.add_case_by_name({})
        c.add_case_by_name({})
        r = run(c)
        assert {v.case_index for v in r.violations} == {0, 1}


class TestAssertionChecking:
    def test_generated_signal_checked_against_assertion(self):
        """Section 2.5.2: once hardware generates an asserted signal, the
        assertion is checked against the actual timing."""
        c = circuit()
        # Claimed stable 0-6 but the driving register changes it at 14-17.
        c.reg("Q .S0-6", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        r = run(c)
        assert any(
            v.kind is ViolationKind.ASSERTION_MISMATCH and "Q .S0-6" in v.signal
            for v in r.violations
        )

    def test_conforming_generated_signal_passes(self):
        c = circuit()
        c.reg("Q .S4-8", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        r = run(c)
        assert r.ok

    def test_assertion_checking_can_be_disabled(self):
        c = circuit()
        c.reg("Q .S0-6", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        from dataclasses import replace

        r = run(c, replace(EXACT, check_assertions=False))
        assert r.ok


class TestVerifierFacade:
    def test_result_shape(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        r = run(c)
        assert r.circuit_name == "t"
        assert len(r.cases) == 1
        assert r.phases.total > 0
        assert "Q" in r.cases[0].waveforms

    def test_summary_listing_contains_signals(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        r = run(c)
        listing = r.summary_listing()
        assert "Q" in listing and "CK .P2-3" in listing

    def test_error_listing_clean(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        assert "No setup" in run(c).error_listing()

    def test_structure_errors_surface(self):
        from repro import InvalidCircuitError

        c = circuit()
        c.add("r", "REG", {"CLOCK": "CK", "OUT": "Q"})
        with pytest.raises(InvalidCircuitError):
            run(c)
