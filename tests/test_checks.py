"""Tests for the constraint checkers (sections 2.4.4, 2.4.5, 2.6)."""

import pytest

from repro.core.checks import (
    check_gating_stability,
    check_min_pulse_width,
    check_setup_hold,
    check_setup_rise_hold_fall,
    check_stable_assertion,
)
from repro.core.timeline import ns_to_ps
from repro.core.values import CHANGE, ONE, STABLE, UNKNOWN, ZERO
from repro.core.violations import ViolationKind
from repro.core.waveform import Waveform

P = 50_000


def clk(high=(20_000, 30_000), skew=(0, 0)):
    return Waveform.from_intervals(P, ZERO, [(*high, ONE)], skew=skew)


def stable_between(start, end):
    return Waveform.from_intervals(P, CHANGE, [(start, end, STABLE)])


class TestSetupHold:
    def test_clean_passes(self):
        v = check_setup_hold(
            "chk", "D", stable_between(10_000, 40_000), "CK", clk(),
            setup_ps=5_000, hold_ps=3_000,
        )
        assert v == []

    def test_setup_violation_amount(self):
        """Figure 3-11's arithmetic: data stable at 47.5 ns, clock rising at
        49.0 ns, setup 2.5 ns — missed by 1.0 ns."""
        data = stable_between(47_500, 47_500 + 40_000)
        v = check_setup_hold(
            "chk", "D", data, "CK", clk(high=(49_000, 49_500)),
            setup_ps=2_500, hold_ps=0,
        )
        assert len(v) == 1
        assert v[0].kind is ViolationKind.SETUP
        assert v[0].missed_by_ps == 1_000

    def test_setup_missed_by_full_amount(self):
        """First Figure 3-11 message: data stable exactly when the clock
        starts rising misses the whole 3.5 ns setup interval."""
        data = stable_between(11_500, 11_500 + 30_000)
        v = check_setup_hold(
            "chk", "D", data, "CK", clk(high=(11_500, 20_000)),
            setup_ps=3_500, hold_ps=0,
        )
        assert len(v) == 1
        assert v[0].missed_by_ps == 3_500

    def test_hold_violation(self):
        data = stable_between(10_000, 21_000)  # changes 1 us after the edge
        v = check_setup_hold(
            "chk", "D", data, "CK", clk(), setup_ps=2_000, hold_ps=3_000,
        )
        assert len(v) == 1
        assert v[0].kind is ViolationKind.HOLD
        assert v[0].missed_by_ps == 2_000  # required until 23, changed at 21

    def test_both_violations(self):
        data = stable_between(19_500, 20_500)
        v = check_setup_hold(
            "chk", "D", data, "CK", clk(), setup_ps=2_000, hold_ps=2_000,
        )
        kinds = {x.kind for x in v}
        assert kinds == {ViolationKind.SETUP, ViolationKind.HOLD}

    def test_clock_skew_tightens_check(self):
        """With ±1 ns clock skew the stable requirement spans the whole
        edge window."""
        data = stable_between(18_500, 40_000)  # fine for a sharp clock
        assert check_setup_hold(
            "chk", "D", data, "CK", clk(), setup_ps=1_000, hold_ps=1_000
        ) == []
        v = check_setup_hold(
            "chk", "D", data, "CK", clk(skew=(-1_000, 1_000)),
            setup_ps=1_000, hold_ps=1_000,
        )
        assert len(v) == 1 and v[0].kind is ViolationKind.SETUP

    def test_unknown_signals_skipped(self):
        u = Waveform.constant(P, UNKNOWN)
        assert check_setup_hold("c", "D", u, "CK", clk(), 1, 1) == []
        assert check_setup_hold("c", "D", stable_between(0, P), "CK", u, 1, 1) == []

    def test_no_clock_edge_reported(self):
        v = check_setup_hold(
            "chk", "D", stable_between(0, P), "CK",
            Waveform.constant(P, ZERO), setup_ps=1_000, hold_ps=1_000,
        )
        assert len(v) == 1
        assert v[0].kind is ViolationKind.NO_CLOCK_EDGE

    def test_every_edge_checked(self):
        two_phase = Waveform.from_intervals(
            P, ZERO, [(10_000, 15_000, ONE), (35_000, 40_000, ONE)]
        )
        data = stable_between(5_000, 30_000)  # unstable around second edge
        v = check_setup_hold(
            "chk", "D", data, "CK", two_phase, setup_ps=2_000, hold_ps=2_000
        )
        assert len(v) == 2  # setup and hold on the 35 ns edge

    def test_negative_hold_allowed(self):
        """Figure 3-5 checks a hold time of -1.0 ns (stability may end
        before the edge completes)."""
        data = stable_between(10_000, 19_500)
        v = check_setup_hold(
            "chk", "D", data, "CK", clk(), setup_ps=5_000, hold_ps=-1_000,
        )
        assert v == []


class TestSetupRiseHoldFall:
    def test_stable_through_pulse_passes(self):
        data = stable_between(10_000, 40_000)
        assert check_setup_rise_hold_fall(
            "chk", "A", data, "WE", clk(), setup_ps=3_500, hold_ps=1_000
        ) == []

    def test_change_while_true_detected(self):
        """The address lines must be stable the whole time write-enable is
        high (Figure 3-5's SETUP RISE HOLD FALL CHK)."""
        data = Waveform.from_intervals(P, STABLE, [(24_000, 26_000, CHANGE)])
        v = check_setup_rise_hold_fall(
            "chk", "A", data, "WE", clk(), setup_ps=1_000, hold_ps=1_000
        )
        assert len(v) == 1
        assert v[0].kind is ViolationKind.STABLE_WHILE_TRUE

    def test_hold_after_falling_edge(self):
        data = stable_between(10_000, 30_500)  # changes 0.5 ns after fall
        v = check_setup_rise_hold_fall(
            "chk", "A", data, "WE", clk(), setup_ps=1_000, hold_ps=1_000
        )
        assert len(v) == 1
        assert v[0].kind is ViolationKind.HOLD
        assert v[0].missed_by_ps == 500

    def test_setup_before_rising_edge(self):
        data = stable_between(19_000, 40_000)
        v = check_setup_rise_hold_fall(
            "chk", "A", data, "WE", clk(), setup_ps=3_500, hold_ps=1_000
        )
        assert len(v) == 1
        assert v[0].kind is ViolationKind.SETUP
        assert v[0].missed_by_ps == 2_500

    def test_no_edge_reported(self):
        v = check_setup_rise_hold_fall(
            "chk", "A", stable_between(0, P), "WE",
            Waveform.constant(P, ONE), setup_ps=1, hold_ps=1,
        )
        assert v and v[0].kind is ViolationKind.NO_CLOCK_EDGE


class TestMinPulseWidth:
    def test_wide_pulse_passes(self):
        assert check_min_pulse_width("c", "CK", clk(), ns_to_ps(5.0), ns_to_ps(3.0)) == []

    def test_narrow_high_pulse(self):
        """The Figure 1-5 runt: a 5 ns pulse against a wider minimum."""
        v = check_min_pulse_width(
            "c", "REG CLOCK", clk(high=(20_000, 25_000)), ns_to_ps(6.0), None
        )
        assert len(v) == 1
        assert v[0].kind is ViolationKind.MIN_PULSE_WIDTH_HIGH
        assert v[0].actual_ps == 5_000
        assert v[0].required_ps == 6_000

    def test_narrow_low_pulse(self):
        wf = Waveform.from_intervals(P, ONE, [(20_000, 22_000, ZERO)])
        v = check_min_pulse_width("c", "CK", wf, None, ns_to_ps(3.0))
        assert len(v) == 1
        assert v[0].kind is ViolationKind.MIN_PULSE_WIDTH_LOW

    def test_constant_is_not_a_pulse(self):
        assert check_min_pulse_width(
            "c", "CK", Waveform.constant(P, ONE), ns_to_ps(5.0), ns_to_ps(5.0)
        ) == []

    def test_separate_skew_does_not_shrink(self):
        """The whole point of the skew field (section 2.8): a 10 ns pulse
        through a 5/10 ns gate still measures 10 ns."""
        delayed = clk().delayed(5_000, 10_000)
        assert check_min_pulse_width("c", "CK", delayed, ns_to_ps(8.0), None) == []

    def test_folded_skew_does_shrink(self):
        folded = clk().delayed(5_000, 10_000).materialized()
        v = check_min_pulse_width("c", "CK", folded, ns_to_ps(8.0), None)
        assert len(v) == 1
        assert v[0].actual_ps == 5_000

    def test_glitch_window_flagged(self):
        wf = Waveform.from_intervals(P, ZERO, [(20_000, 24_000, CHANGE)])
        v = check_min_pulse_width("c", "CK", wf, ns_to_ps(5.0), None)
        assert any(x.kind is ViolationKind.POSSIBLE_GLITCH for x in v)

    def test_glitch_warnings_can_be_disabled(self):
        wf = Waveform.from_intervals(P, ZERO, [(20_000, 24_000, CHANGE)])
        v = check_min_pulse_width(
            "c", "CK", wf, ns_to_ps(5.0), None, glitch_warnings=False
        )
        assert v == []

    def test_glitch_config_reaches_checker(self):
        from dataclasses import replace

        from repro import Circuit, EXACT, TimingVerifier
        from repro.workloads import fig_1_5_gated_clock

        quiet = replace(EXACT, glitch_warnings=False)
        result = TimingVerifier(fig_1_5_gated_clock(), quiet).verify()
        assert not any(
            x.kind is ViolationKind.POSSIBLE_GLITCH for x in result.violations
        )

    def test_unknown_skipped(self):
        assert check_min_pulse_width(
            "c", "CK", Waveform.constant(P, UNKNOWN), 1_000, 1_000
        ) == []

    def test_wrapping_pulse_measured_once(self):
        wf = Waveform.from_intervals(P, ZERO, [(45_000, 52_000, ONE)])
        v = check_min_pulse_width("c", "CK", wf, ns_to_ps(8.0), None)
        assert len(v) == 1
        assert v[0].actual_ps == 7_000


class TestGatingStability:
    def test_stable_control_passes(self):
        control = stable_between(10_000, 40_000)
        assert check_gating_stability("g", "WRITE", control, "CK", clk()) == []

    def test_figure_1_5_hazard(self):
        """ENABLE falls at 25 ns while CLOCK is asserted 20-30 ns: the
        gated register may be falsely clocked."""
        enable = Waveform.from_intervals(P, ONE, [(25_000, 50_000, ZERO)])
        # As a timing value the fall is an instantaneous transition at 25.
        v = check_gating_stability("g", "ENABLE", enable, "CLOCK", clk())
        assert len(v) == 1
        assert v[0].kind is ViolationKind.GATING_STABILITY

    def test_control_change_during_clock_skew_window(self):
        control = Waveform.from_intervals(P, STABLE, [(18_500, 19_500, CHANGE)])
        assert check_gating_stability("g", "W", control, "CK", clk()) == []
        v = check_gating_stability(
            "g", "W", control, "CK", clk(skew=(-1_000, 1_000))
        )
        assert len(v) == 1

    def test_unknowns_skipped(self):
        u = Waveform.constant(P, UNKNOWN)
        assert check_gating_stability("g", "W", u, "CK", clk()) == []


class TestStableAssertionCheck:
    def test_conforming_signal_passes(self):
        asserted = stable_between(10_000, 40_000)
        computed = stable_between(5_000, 45_000)  # stable for longer: fine
        assert check_stable_assertion("S", computed, asserted) == []

    def test_violating_signal_reported(self):
        """Section 2.5.2: the designer's assertion is checked against the
        actual signal once hardware generates it."""
        asserted = stable_between(10_000, 40_000)
        computed = stable_between(15_000, 40_000)  # still changing at 12 ns
        v = check_stable_assertion("S", computed, asserted)
        assert len(v) == 1
        assert v[0].kind is ViolationKind.ASSERTION_MISMATCH

    def test_unknown_skipped(self):
        asserted = stable_between(10_000, 40_000)
        assert check_stable_assertion("S", Waveform.constant(P, UNKNOWN), asserted) == []
