"""Tests for the seven-value algebra (sections 2.4.1 and 2.4.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import (
    CHANGE,
    FALL,
    ONE,
    RISE,
    STABLE,
    UNKNOWN,
    ZERO,
    Value,
    is_changing,
    is_constant,
    is_stable,
    merge_overlay,
    parse_value,
    transition_value,
    value_and,
    value_and_n,
    value_chg,
    value_either,
    value_not,
    value_or,
    value_or_n,
    value_xor,
    value_xor_n,
)

ALL = list(Value)
values = st.sampled_from(ALL)


class TestClassification:
    def test_stable_set(self):
        assert is_stable(ZERO) and is_stable(ONE) and is_stable(STABLE)
        assert not is_stable(CHANGE) and not is_stable(RISE)
        assert not is_stable(UNKNOWN)

    def test_changing_set(self):
        for v in (CHANGE, RISE, FALL):
            assert is_changing(v)
        for v in (ZERO, ONE, STABLE, UNKNOWN):
            assert not is_changing(v)

    def test_constant_set(self):
        assert is_constant(ZERO) and is_constant(ONE)
        assert not is_constant(STABLE)

    def test_parse(self):
        assert parse_value("s") is STABLE
        assert parse_value("0") is ZERO
        with pytest.raises(ValueError):
            parse_value("Q")


class TestOr:
    def test_one_dominates_everything(self):
        for v in ALL:
            assert value_or(ONE, v) is ONE
            assert value_or(v, ONE) is ONE

    def test_zero_is_identity(self):
        for v in ALL:
            if v is not ZERO:
                assert value_or(ZERO, v) is v

    def test_paper_example_stable_or_rising_is_rising(self):
        """Section 2.4.2's worked example: S OR R gives R, the worst case."""
        assert value_or(STABLE, RISE) is RISE

    def test_stable_or_falling_is_falling(self):
        assert value_or(STABLE, FALL) is FALL

    def test_rise_or_fall_is_change(self):
        assert value_or(RISE, FALL) is CHANGE

    def test_unknown_propagates(self):
        assert value_or(UNKNOWN, ZERO) is UNKNOWN
        assert value_or(UNKNOWN, STABLE) is UNKNOWN
        assert value_or(UNKNOWN, RISE) is UNKNOWN

    @given(values, values)
    def test_commutative(self, a, b):
        assert value_or(a, b) is value_or(b, a)

    @given(values)
    def test_idempotent(self, a):
        assert value_or(a, a) is a

    @given(values, values, values)
    def test_associative(self, a, b, c):
        assert value_or(value_or(a, b), c) is value_or(a, value_or(b, c))


class TestAnd:
    def test_zero_dominates(self):
        for v in ALL:
            assert value_and(ZERO, v) is ZERO

    def test_one_is_identity(self):
        for v in ALL:
            if v is not ONE:
                assert value_and(ONE, v) is v

    def test_stable_and_edge(self):
        assert value_and(STABLE, RISE) is RISE
        assert value_and(STABLE, FALL) is FALL

    def test_gated_clock_hazard_shape(self):
        """Figure 1-5: a clock high ANDed with a late-falling enable gives a
        falling output — the source of the runt pulse."""
        assert value_and(ONE, FALL) is FALL

    @given(values, values)
    def test_commutative(self, a, b):
        assert value_and(a, b) is value_and(b, a)

    @given(values, values, values)
    def test_associative(self, a, b, c):
        assert value_and(value_and(a, b), c) is value_and(a, value_and(b, c))

    @given(values, values)
    def test_de_morgan(self, a, b):
        assert value_not(value_and(a, b)) is value_or(value_not(a), value_not(b))


class TestNot:
    def test_levels_invert(self):
        assert value_not(ZERO) is ONE
        assert value_not(ONE) is ZERO

    def test_edges_swap(self):
        assert value_not(RISE) is FALL
        assert value_not(FALL) is RISE

    def test_fixed_points(self):
        for v in (STABLE, CHANGE, UNKNOWN):
            assert value_not(v) is v

    @given(values)
    def test_involution(self, a):
        assert value_not(value_not(a)) is a


class TestXor:
    def test_zero_identity(self):
        for v in ALL:
            assert value_xor(ZERO, v) is v

    def test_one_inverts(self):
        assert value_xor(ONE, RISE) is FALL
        assert value_xor(ONE, ZERO) is ONE

    def test_unknown_dominates(self):
        for v in ALL:
            assert value_xor(UNKNOWN, v) is UNKNOWN

    def test_edge_with_stable_unknown_is_change(self):
        """A transition XORed with an unknown level can go either way."""
        assert value_xor(STABLE, RISE) is CHANGE
        assert value_xor(STABLE, FALL) is CHANGE

    def test_two_edges_are_change(self):
        assert value_xor(RISE, RISE) is CHANGE
        assert value_xor(RISE, FALL) is CHANGE

    @given(values, values)
    def test_commutative(self, a, b):
        assert value_xor(a, b) is value_xor(b, a)


class TestWorstCaseOrdering:
    """The tables must never report a stable output when an input change
    could reach the output — the soundness property behind the whole
    approach (a missed change would hide a timing error)."""

    @given(values, values)
    def test_or_sound(self, a, b):
        out = value_or(a, b)
        if is_stable(out):
            # Then either one input pins the output, or both inputs stable.
            assert a is ONE or b is ONE or (is_stable(a) and is_stable(b))

    @given(values, values)
    def test_and_sound(self, a, b):
        out = value_and(a, b)
        if is_stable(out):
            assert a is ZERO or b is ZERO or (is_stable(a) and is_stable(b))

    @given(values, values)
    def test_xor_sound(self, a, b):
        out = value_xor(a, b)
        if is_stable(out):
            assert is_stable(a) and is_stable(b)


class TestChg:
    def test_all_stable_gives_stable(self):
        assert value_chg([ZERO, ONE, STABLE]) is STABLE

    def test_any_changing_gives_change(self):
        assert value_chg([ZERO, RISE]) is CHANGE
        assert value_chg([STABLE, CHANGE, ONE]) is CHANGE
        assert value_chg([FALL]) is CHANGE

    def test_unknown_dominates_changing(self):
        assert value_chg([UNKNOWN, RISE]) is UNKNOWN

    def test_single_input(self):
        assert value_chg([STABLE]) is STABLE


class TestEither:
    def test_equal(self):
        for v in ALL:
            assert value_either(v, v) is v

    def test_two_levels_give_stable(self):
        assert value_either(ZERO, ONE) is STABLE

    def test_stable_with_edge_gives_edge(self):
        assert value_either(STABLE, RISE) is RISE
        assert value_either(ZERO, FALL) is FALL

    def test_edge_mix_gives_change(self):
        assert value_either(RISE, FALL) is CHANGE

    def test_unknown_dominates(self):
        assert value_either(UNKNOWN, ONE) is UNKNOWN

    @given(values, values)
    def test_commutative(self, a, b):
        assert value_either(a, b) is value_either(b, a)


class TestTransitionValue:
    def test_level_changes(self):
        assert transition_value(ZERO, ONE) is RISE
        assert transition_value(ONE, ZERO) is FALL

    def test_edge_extensions(self):
        assert transition_value(ZERO, RISE) is RISE
        assert transition_value(RISE, ONE) is RISE
        assert transition_value(ONE, FALL) is FALL
        assert transition_value(FALL, ZERO) is FALL

    def test_stable_boundaries_are_change(self):
        assert transition_value(ZERO, STABLE) is CHANGE
        assert transition_value(STABLE, ONE) is CHANGE

    def test_change_boundaries(self):
        assert transition_value(STABLE, CHANGE) is CHANGE
        assert transition_value(CHANGE, STABLE) is CHANGE

    def test_rise_to_fall_is_change(self):
        assert transition_value(RISE, FALL) is CHANGE

    def test_unknown_dominates(self):
        assert transition_value(UNKNOWN, ONE) is UNKNOWN
        assert transition_value(STABLE, UNKNOWN) is UNKNOWN

    @given(values)
    def test_no_change_at_equal_values(self, v):
        assert transition_value(v, v) is v


class TestMergeOverlay:
    def test_same_kept(self):
        assert merge_overlay(RISE, RISE) is RISE

    def test_mixed_becomes_change(self):
        assert merge_overlay(RISE, FALL) is CHANGE

    def test_unknown_dominates(self):
        assert merge_overlay(RISE, UNKNOWN) is UNKNOWN


class TestNaryFolds:
    def test_or_n(self):
        assert value_or_n([ZERO, STABLE, RISE]) is RISE
        assert value_or_n([ZERO, ONE, CHANGE]) is ONE

    def test_and_n(self):
        assert value_and_n([ONE, ONE, FALL]) is FALL
        assert value_and_n([ONE, ZERO, CHANGE]) is ZERO

    def test_xor_n(self):
        assert value_xor_n([ZERO, ONE, ONE]) is ZERO
        assert value_xor_n([RISE, ZERO]) is RISE
