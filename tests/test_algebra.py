"""Tests for waveform combination and the skew-folding rule (section 2.8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra import (
    all_equal_constant,
    combine,
    pointwise,
    wave_and,
    wave_apply,
    wave_chg,
    wave_or,
    wave_xor,
)
from repro.core.values import (
    CHANGE,
    FALL,
    ONE,
    RISE,
    STABLE,
    UNKNOWN,
    ZERO,
    Value,
    value_or_n,
)
from repro.core.waveform import Waveform

P = 50_000


def pulse(start, end, skew=(0, 0)):
    return Waveform.from_intervals(P, ZERO, [(start, end, ONE)], skew=skew)


class TestPointwise:
    def test_or_of_two_pulses(self):
        out = wave_or([pulse(10_000, 20_000), pulse(15_000, 25_000)])
        assert out.level_runs(ONE) == [(10_000, 25_000)]

    def test_and_of_two_pulses(self):
        out = wave_and([pulse(10_000, 20_000), pulse(15_000, 25_000)])
        assert out.level_runs(ONE) == [(15_000, 20_000)]

    def test_xor(self):
        out = wave_xor([pulse(10_000, 20_000), pulse(15_000, 25_000)])
        assert out.value_at(12_000) is ONE
        assert out.value_at(17_000) is ZERO
        assert out.value_at(22_000) is ONE

    def test_period_mismatch_rejected(self):
        with pytest.raises(ValueError):
            wave_or([pulse(0, 10), Waveform.constant(P * 2, ZERO)])

    def test_pointwise_rejects_skew(self):
        with pytest.raises(ValueError):
            pointwise(value_or_n, [pulse(0, 10_000, skew=(0, 5))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pointwise(value_or_n, [])


class TestSkewRule:
    def test_single_changing_operand_keeps_skew(self):
        """Combining a skewed clock with a constant enabling level must keep
        the skew in the separate field so pulse width survives (Figure 2-8)."""
        clk = pulse(20_000, 30_000, skew=(0, 5_000))
        enable = Waveform.constant(P, ONE)
        out = wave_and([clk, enable])
        assert out.skew == (0, 5_000)
        assert out.duration_of(ONE) == 10_000

    def test_constant_result_when_gated_off(self):
        clk = pulse(20_000, 30_000, skew=(0, 5_000))
        out = wave_and([clk, Waveform.constant(P, ZERO)])
        assert out.is_constant
        assert out.value_at(0) is ZERO

    def test_two_changing_operands_fold_skew(self):
        """Section 2.8: 'if two or more changing signals are combined, the
        skew of the resulting signal cannot be represented separately.'"""
        a = pulse(10_000, 20_000, skew=(0, 2_000))
        b = pulse(30_000, 40_000, skew=(0, 3_000))
        out = wave_or([a, b])
        assert out.skew == (0, 0)
        assert out.value_at(11_000) is RISE  # a's folded rise window
        assert out.value_at(41_000) is FALL  # b's folded fall window

    def test_constant_skew_is_vacuous(self):
        a = pulse(10_000, 20_000)
        c = Waveform.constant(P, STABLE).with_skew((-1_000, 1_000))
        out = wave_or([a, c])
        assert out.skew == (0, 0)
        assert out.value_at(15_000) is ONE

    def test_fold_is_conservative(self):
        """The folded combination must cover every behaviour the separate
        representation allowed: wherever the operands' skew windows fall,
        the output is marked as possibly changing."""
        a = pulse(10_000, 20_000, skew=(0, 2_000))
        b = pulse(12_000, 22_000, skew=(0, 2_000))
        out = wave_or([a, b])
        # b holds the OR high until its earliest fall at 22 ns; the output
        # can only fall within b's fall window [22, 24].
        assert out.value_at(21_000) is ONE
        assert out.value_at(23_000) in (FALL, CHANGE)
        assert out.value_at(25_000) is ZERO


class TestChg:
    def test_chg_collapses_value_behaviour(self):
        """The CHG function keeps only when signals change - the modelling
        trick for adders and parity trees (section 2.4.2)."""
        data = Waveform.from_intervals(P, STABLE, [(5_000, 10_000, CHANGE)])
        sel = Waveform.from_intervals(P, STABLE, [(7_000, 12_000, CHANGE)])
        out = wave_chg([data, sel])
        assert out.value_at(6_000) is CHANGE
        assert out.value_at(11_000) is CHANGE
        assert out.value_at(20_000) is STABLE

    def test_chg_of_constants_is_stable(self):
        out = wave_chg([Waveform.constant(P, ZERO), Waveform.constant(P, ONE)])
        assert out == Waveform.constant(P, STABLE)

    def test_chg_unknown_dominates(self):
        out = wave_chg([Waveform.constant(P, UNKNOWN), pulse(0, 10_000)])
        assert out.is_fully_unknown


class TestWaveApply:
    def test_positional_function(self):
        def mux(sel, a, b):
            return a if sel is ZERO else b

        out = wave_apply(mux, [Waveform.constant(P, ZERO), pulse(0, 10_000), pulse(20_000, 30_000)])
        assert out.value_at(5_000) is ONE
        assert out.value_at(25_000) is ZERO


class TestHelpers:
    def test_all_equal_constant(self):
        assert all_equal_constant([Waveform.constant(P, ONE), Waveform.constant(P, ONE)])
        assert not all_equal_constant([Waveform.constant(P, ONE), pulse(0, 10)])
        assert not all_equal_constant(
            [Waveform.constant(P, ONE), Waveform.constant(P, ZERO)]
        )


@st.composite
def simple_wf(draw):
    start = draw(st.integers(min_value=0, max_value=P - 2))
    end = draw(st.integers(min_value=start + 1, max_value=P - 1))
    value = draw(st.sampled_from([ONE, STABLE, CHANGE]))
    base = draw(st.sampled_from([ZERO, STABLE]))
    late = draw(st.integers(min_value=0, max_value=3_000))
    return Waveform.from_intervals(P, base, [(start, end, value)], skew=(0, late))


class TestCombinationProperties:
    @given(st.lists(simple_wf(), min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_combine_covers_period(self, wfs):
        out = wave_or(wfs)
        assert sum(w for _, w in out.segments) == P

    @given(simple_wf(), simple_wf())
    @settings(max_examples=100)
    def test_or_commutative(self, a, b):
        assert wave_or([a, b]) == wave_or([b, a])

    @given(simple_wf())
    @settings(max_examples=100)
    def test_or_with_zero_identity_modulo_skew_fold(self, a):
        out = wave_or([a, Waveform.constant(P, ZERO)])
        # A constant operand's skew is vacuous and gets dropped.
        expected = a.with_skew((0, 0)) if a.is_constant else a
        assert out == expected.with_eval_str("")

    @given(simple_wf(), simple_wf())
    @settings(max_examples=100)
    def test_and_soundness(self, a, b):
        """Wherever the combined output claims a stable value, neither
        operand may force a change through the gate at that instant."""
        out = wave_and([a, b]).materialized()
        am, bm = a.materialized(), b.materialized()
        for start, end, value in out.iter_segments():
            if value not in (ZERO, ONE, STABLE):
                continue
            probe = (start + end) // 2
            va, vb = am.value_at(probe), bm.value_at(probe)
            changing = {CHANGE, RISE, FALL}
            if va in changing:
                assert vb is ZERO
            if vb in changing:
                assert va is ZERO
