"""Tests for the scald-tv command-line entry point."""

import pytest

from repro.cli import main

CLEAN = """
design CLI_TEST;
period 50 ns;
clock_unit 6.25 ns;
prim REG r (CLOCK="CK .P2-3", DATA="D .S0-6", OUT="Q") delay=1.5:4.5;
prim "SETUP HOLD CHK" s (I="D .S0-6", CK="CK .P2-3") setup=2.5 hold=1.5;
"""

FAILING = CLEAN.replace('.S0-6', '.S3-6')


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.scald"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def failing_file(tmp_path):
    path = tmp_path / "failing.scald"
    path.write_text(FAILING)
    return str(path)


class TestCli:
    def test_clean_design_exits_zero(self, clean_file, capsys):
        assert main([clean_file]) == 0
        assert "No setup" in capsys.readouterr().out

    def test_failing_design_exits_one(self, failing_file, capsys):
        assert main([failing_file]) == 1
        assert "SETUP" in capsys.readouterr().out

    def test_summary_flag(self, clean_file, capsys):
        assert main([clean_file, "--summary"]) == 0
        out = capsys.readouterr().out
        assert "TIMING VERIFIER SUMMARY" in out
        assert "CK .P2-3" in out

    def test_stats_flag(self, clean_file, capsys):
        assert main([clean_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "MACRO EXPANSION EXECUTION STATISTICS" in out
        assert "TIMING VERIFIER EXECUTION STATISTICS" in out

    def test_xref_flag(self, clean_file, capsys):
        assert main([clean_file, "--xref"]) == 0
        assert "undefined signals" in capsys.readouterr().out.lower()

    def test_wire_delay_option(self, clean_file):
        assert main([clean_file, "--wire-delay", "0.0:0.0"]) == 0

    def test_bad_wire_delay(self, clean_file, capsys):
        assert main([clean_file, "--wire-delay", "oops"]) == 2
        assert "wire-delay" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/file.scald"]) == 2
        assert "error" in capsys.readouterr().err

    def test_storage_flag(self, clean_file, capsys):
        assert main([clean_file, "--storage"]) == 0
        out = capsys.readouterr().out
        assert "STORAGE REQUIRED" in out
        assert "signal values" in out

    def test_explain_flag(self, failing_file, capsys):
        assert main([failing_file, "--explain"]) == 1
        out = capsys.readouterr().out
        assert "critical contribution" in out

    def test_syntax_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.scald"
        bad.write_text("design X; this is not scald")
        assert main([str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestWireDelayValidation:
    def test_inverted_range_rejected(self, clean_file, capsys):
        assert main([clean_file, "--wire-delay", "3.0:1.0"]) == 2
        assert "MIN must not exceed MAX" in capsys.readouterr().err

    def test_negative_min_rejected(self, clean_file, capsys):
        assert main([clean_file, "--wire-delay=-1.0:2.0"]) == 2
        assert "non-negative" in capsys.readouterr().err

    def test_negative_max_rejected(self, clean_file, capsys):
        assert main([clean_file, "--wire-delay", "0.0:-2.0"]) == 2
        assert "non-negative" in capsys.readouterr().err

    def test_equal_bounds_accepted(self, clean_file):
        assert main([clean_file, "--wire-delay", "1.5:1.5"]) == 0


STRUCT_WARN = """
design W;
period 50 ns;
clock_unit 6.25 ns;
prim AND g (I1="A .S0-6", I2="B .S0-6", OUT="CK .P2-3") delay=1.0:2.0;
prim REG r (CLOCK="CK .P2-3", DATA="D .S0-6", OUT="Q") delay=1.5:4.5;
"""


class TestStructureWarnings:
    def test_warnings_surfaced_in_output(self, tmp_path, capsys):
        path = tmp_path / "warn.scald"
        path.write_text(STRUCT_WARN)
        main([str(path)])
        out = capsys.readouterr().out
        assert "structure: WARNING" in out
        assert "clock-asserted signal is also driven" in out

    def test_clean_design_prints_no_structure_block(self, clean_file, capsys):
        assert main([clean_file]) == 0
        assert "structure:" not in capsys.readouterr().out


MULTICASE = CLEAN.replace(
    "design CLI_TEST;", "design CLI_CASES;"
) + 'case "SEL" = 0;\ncase "SEL" = 1;\n'


@pytest.fixture
def multicase_file(tmp_path):
    path = tmp_path / "cases.scald"
    path.write_text(MULTICASE)
    return str(path)


class TestJsonEnvelope:
    def test_json_stdout_is_pure_json(self, clean_file, capsys):
        """Regression: the human 'No setup...' line used to precede the
        JSON object, so json.loads failed at char 0."""
        import json

        assert main([clean_file, "--profile", "--json"]) == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)  # must parse from char 0
        assert data["circuit"] == "CLI_TEST"
        assert "No setup" in captured.err  # human text moved to stderr

    def test_json_implies_profile(self, clean_file, capsys):
        import json

        assert main([clean_file, "--json"]) == 0
        assert "phases_seconds" in json.loads(capsys.readouterr().out)

    def test_json_with_summary_keeps_stdout_clean(self, clean_file, capsys):
        import json

        assert main([clean_file, "--json", "--summary"]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)
        assert "TIMING VERIFIER SUMMARY" in captured.err

    def test_parallel_json_reports_cpu_phases(self, multicase_file, capsys):
        import json

        assert main([multicase_file, "--json", "--jobs", "2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "phases_cpu_seconds" in data

    def test_parallel_json_reports_pool_counters(self, multicase_file, capsys):
        import json

        assert main([multicase_file, "--json", "--jobs", "2"]) == 0
        data = json.loads(capsys.readouterr().out)
        pool = data["pool"]
        assert pool["workers"] == 2
        assert pool["pool_starts"] == 1
        assert pool["runs"] == 1
        assert pool["waveforms_shipped"] > 0

    def test_serial_json_has_no_pool_block(self, multicase_file, capsys):
        import json

        assert main([multicase_file, "--json"]) == 0
        assert "pool" not in json.loads(capsys.readouterr().out)


class TestCaseValidation:
    def test_out_of_range_case_exits_2_with_usage(self, clean_file, capsys):
        """Regression: --case 99 used to escape as a raw IndexError from
        reporting/listing.py."""
        assert main([clean_file, "--summary", "--case", "99"]) == 2
        err = capsys.readouterr().err
        assert "bad --case 99" in err
        assert "use 0..0" in err

    def test_negative_case_rejected(self, clean_file, capsys):
        assert main([clean_file, "--summary", "--case=-1"]) == 2
        assert "bad --case -1" in capsys.readouterr().err

    def test_last_valid_case_accepted(self, multicase_file):
        assert main([multicase_file, "--summary", "--case", "1"]) == 0


class TestJobsFlag:
    def test_jobs_output_byte_identical_to_serial(self, multicase_file, capsys):
        assert main([multicase_file, "--summary"]) == 0
        serial = capsys.readouterr().out
        assert main([multicase_file, "--summary", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_jobs_preserves_failure_exit_and_listing(self, tmp_path, capsys):
        path = tmp_path / "failing_cases.scald"
        path.write_text(FAILING + 'case "SEL" = 0;\ncase "SEL" = 1;\n')
        assert main([str(path)]) == 1
        serial = capsys.readouterr().out
        assert main([str(path), "--jobs", "2"]) == 1
        assert capsys.readouterr().out == serial

    def test_zero_jobs_rejected(self, clean_file, capsys):
        assert main([clean_file, "--jobs", "0"]) == 2
        assert "bad --jobs" in capsys.readouterr().err


class TestFlagConflicts:
    """Contradictory flag combinations die with one line and exit 2."""

    def test_fmax_with_case_rejected(self, clean_file, capsys):
        assert main([clean_file, "--fmax", "--case", "0"]) == 2
        err = capsys.readouterr().err
        assert "bad flags" in err and "--case" in err
        assert "\n" not in err.strip()  # one line, no traceback

    def test_bit_blast_with_jobs_rejected(self, clean_file, capsys):
        assert main([clean_file, "--bit-blast", "--jobs", "2"]) == 2
        err = capsys.readouterr().err
        assert "bad flags" in err and "--jobs" in err
        assert "\n" not in err.strip()

    def test_fmax_with_jobs_rejected(self, clean_file, capsys):
        """--fmax bisects over the period in-process; pool workers would
        hold the stale period, so the combination dies up front."""
        assert main([clean_file, "--fmax", "--jobs", "2"]) == 2
        err = capsys.readouterr().err
        assert "bad flags" in err and "--fmax" in err and "--jobs" in err
        assert "\n" not in err.strip()

    def test_crosscheck_with_jobs_accepted(self, multicase_file, capsys):
        """--crosscheck works against pooled results: the lazy snapshots
        fetch worker waveforms on demand for the enclosure check."""
        assert main([multicase_file, "--crosscheck", "--jobs", "2"]) == 0
        assert "crosscheck: static windows enclose" in capsys.readouterr().out

    def test_negative_jobs_rejected(self, clean_file, capsys):
        assert main([clean_file, "--jobs=-3"]) == 2
        assert "bad --jobs" in capsys.readouterr().err

    def test_fmax_alone_accepted(self, clean_file, capsys):
        assert main([clean_file, "--fmax"]) == 0
        assert "fmax:" in capsys.readouterr().out

    def test_bit_blast_with_serial_jobs_accepted(self, clean_file):
        assert main([clean_file, "--bit-blast", "--jobs", "1"]) == 0


class TestFmaxFlag:
    def test_fmax_reports_min_period(self, clean_file, capsys):
        assert main([clean_file, "--fmax"]) == 0
        out = capsys.readouterr().out
        assert "fmax:" in out
        assert "min period" in out or "not period-limited" in out

    def test_fmax_json_carries_fmax_block(self, clean_file, capsys):
        import json

        assert main([clean_file, "--json", "--fmax"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "fmax" in data
        assert data["fmax"]["method"] == "bisect"
        assert (data["fmax"]["min_period_ps"] is None) == (
            data["fmax"]["fmax_mhz"] is None
        )


class TestLintFlag:
    def test_lint_flag_reports_findings(self, clean_file, capsys):
        assert main([clean_file, "--lint"]) == 0
        out = capsys.readouterr().out
        assert "dead-net" in out  # Q is driven but unread: advisory only

    def test_lint_errors_force_nonzero_exit(self, capsys):
        code = main(["tests/fixtures/gated_clock.scald", "--lint"])
        assert code == 1
        out = capsys.readouterr().out
        assert "gated-clock" in out and "short-directive" in out

    def test_without_flag_no_lint_output(self, clean_file, capsys):
        assert main([clean_file]) == 0
        assert "dead-net" not in capsys.readouterr().out
