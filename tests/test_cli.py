"""Tests for the scald-tv command-line entry point."""

import pytest

from repro.cli import main

CLEAN = """
design CLI_TEST;
period 50 ns;
clock_unit 6.25 ns;
prim REG r (CLOCK="CK .P2-3", DATA="D .S0-6", OUT="Q") delay=1.5:4.5;
prim "SETUP HOLD CHK" s (I="D .S0-6", CK="CK .P2-3") setup=2.5 hold=1.5;
"""

FAILING = CLEAN.replace('.S0-6', '.S3-6')


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.scald"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def failing_file(tmp_path):
    path = tmp_path / "failing.scald"
    path.write_text(FAILING)
    return str(path)


class TestCli:
    def test_clean_design_exits_zero(self, clean_file, capsys):
        assert main([clean_file]) == 0
        assert "No setup" in capsys.readouterr().out

    def test_failing_design_exits_one(self, failing_file, capsys):
        assert main([failing_file]) == 1
        assert "SETUP" in capsys.readouterr().out

    def test_summary_flag(self, clean_file, capsys):
        assert main([clean_file, "--summary"]) == 0
        out = capsys.readouterr().out
        assert "TIMING VERIFIER SUMMARY" in out
        assert "CK .P2-3" in out

    def test_stats_flag(self, clean_file, capsys):
        assert main([clean_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "MACRO EXPANSION EXECUTION STATISTICS" in out
        assert "TIMING VERIFIER EXECUTION STATISTICS" in out

    def test_xref_flag(self, clean_file, capsys):
        assert main([clean_file, "--xref"]) == 0
        assert "undefined signals" in capsys.readouterr().out.lower()

    def test_wire_delay_option(self, clean_file):
        assert main([clean_file, "--wire-delay", "0.0:0.0"]) == 0

    def test_bad_wire_delay(self, clean_file, capsys):
        assert main([clean_file, "--wire-delay", "oops"]) == 2
        assert "wire-delay" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/file.scald"]) == 2
        assert "error" in capsys.readouterr().err

    def test_storage_flag(self, clean_file, capsys):
        assert main([clean_file, "--storage"]) == 0
        out = capsys.readouterr().out
        assert "STORAGE REQUIRED" in out
        assert "signal values" in out

    def test_explain_flag(self, failing_file, capsys):
        assert main([failing_file, "--explain"]) == 1
        out = capsys.readouterr().out
        assert "critical contribution" in out

    def test_syntax_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.scald"
        bad.write_text("design X; this is not scald")
        assert main([str(bad)]) == 2
        assert "error" in capsys.readouterr().err
