"""Tests for the session server (repro.server, ``scald-serve``).

The server runs in-process on an ephemeral loopback port; every wire
answer is checked against the direct Python API on the same design, so
the HTTP layer can only ever be a transport, never a second
implementation.
"""

import threading

import pytest

from repro import Session
from repro.incremental import ParamEdit, WireDelayEdit, edit_to_doc
from repro.reporting.stafmt import fmax_doc, sta_doc
from repro.server import ServerError, SessionClient, SessionServer

SHIFTER = "examples/designs/shifter.scald"
MULTICYCLE = "examples/designs/multicycle.scald"
MULTICYCLE_SDC = "examples/designs/multicycle.sdc"


@pytest.fixture(scope="module")
def server():
    srv = SessionServer(port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def client(server):
    cli = SessionClient("127.0.0.1", server.port)
    yield cli
    for entry in cli.sessions():
        cli.delete(entry["id"])
    cli.close()


class TestLifecycle:
    def test_health(self, client):
        doc = client.health()
        assert doc["ok"] and doc["sessions"] == 0

    def test_create_list_delete(self, client):
        sid = client.create(path=SHIFTER)
        listing = client.sessions()
        assert [s["id"] for s in listing] == [sid]
        assert listing[0]["circuit"] == "SHIFTER"
        client.delete(sid)
        assert client.sessions() == []

    def test_create_from_source(self, client):
        sid = client.create(source=open(SHIFTER).read(), name="inline")
        assert client.verify(sid)["ok"]

    def test_unknown_session_404(self, client):
        with pytest.raises(ServerError) as exc:
            client.verify("s999")
        assert exc.value.status == 404

    def test_create_needs_exactly_one_input(self, client):
        with pytest.raises(ServerError) as exc:
            client.create(name="nothing")
        assert exc.value.status == 400
        with pytest.raises(ServerError) as exc:
            client.create(path=SHIFTER, source="design X;")
        assert exc.value.status == 400

    def test_bad_route_404(self, client):
        with pytest.raises(ServerError) as exc:
            client._request("POST", "/frobnicate")
        assert exc.value.status == 404


class TestVerifyOverHttp:
    def test_verify_matches_direct_api(self, client):
        sid = client.create(path=SHIFTER)
        doc = client.verify(sid)
        direct = Session.from_file(SHIFTER).verify()
        assert doc["ok"] == direct.ok
        assert doc["error_listing"] == direct.error_listing()
        assert doc["summary_listing"] == direct.summary_listing()
        assert doc["xref_assumed_stable"] == direct.xref_assumed_stable
        assert doc["profile"]["primitives"] == direct.primitive_count

    def test_edit_reverify_matches_direct_api(self, client):
        edits = [
            WireDelayEdit("AFTER 1", (0.0, 1.0)),
            ParamEdit("s1/rot", {"delay": (2.0, 5.5)}),
        ]
        sid = client.create(path=SHIFTER)
        client.verify(sid)
        assert client.edit(sid, *[edit_to_doc(e) for e in edits]) == {
            "ok": True,
            "applied": 2,
        }
        doc = client.reverify(sid, prescreen=False)

        direct = Session.from_file(SHIFTER)
        direct.verify()
        direct.edit(*edits)
        inc = direct.reverify(prescreen=False)
        assert doc["incremental"] is True
        assert doc["prescreen"] is None
        assert doc["ok"] == inc.ok
        assert doc["error_listing"] == inc.result.error_listing()
        assert doc["summary_listing"] == inc.result.summary_listing()
        assert (
            doc["profile"]["incremental"]["dirty_primitives"]
            == inc.stats.dirty_primitives
        )

    def test_reverify_prescreen_on_wire(self, client):
        sid = client.create(path=SHIFTER)
        client.verify(sid)
        doc = client.reverify(sid, prescreen=True)
        assert doc["prescreen"] is not None
        assert doc["prescreen"]["ok"] is True

    def test_bad_edit_is_a_400(self, client):
        sid = client.create(path=SHIFTER)
        with pytest.raises(ServerError) as exc:
            client.edit(sid, {"kind": "wire_delay", "net": "NO SUCH NET",
                              "delay_ns": [0.0, 1.0]})
        assert exc.value.status == 400
        # The session survives a rejected edit.
        assert client.verify(sid)["ok"]

    def test_sdc_path_rides_along(self, client):
        sid = client.create(path=MULTICYCLE, sdc_path=MULTICYCLE_SDC)
        assert client.verify(sid)["ok"]
        bare = client.create(path=MULTICYCLE)
        assert not client.verify(bare)["ok"]


class TestPooledOverHttp:
    """A session created with "jobs" holds a warm worker pool behind the
    HTTP API; its listings stay byte-identical to the serial ones."""

    def test_jobs_session_matches_serial_and_reuses_pool(self, client):
        sid = client.create(path=SHIFTER, jobs=2)
        serial = Session.from_file(SHIFTER).verify()
        doc = client.verify(sid)
        assert doc["ok"] == serial.ok
        assert doc["error_listing"] == serial.error_listing()
        assert doc["summary_listing"] == serial.summary_listing()
        pool = doc["profile"]["pool"]
        assert pool["workers"] == 2 and pool["pool_starts"] == 1

        # A second verify reuses the same workers, warm.
        doc2 = client.verify(sid)
        assert doc2["summary_listing"] == serial.summary_listing()
        pool2 = doc2["profile"]["pool"]
        assert pool2["pool_starts"] == 1
        assert pool2["runs"] == 2 and pool2["warm_runs"] >= 1

    def test_pooled_edit_reverify_matches_serial(self, client):
        edit = WireDelayEdit("AFTER 1", (0.0, 1.0))
        sid = client.create(path=SHIFTER, jobs=2)
        client.verify(sid)
        client.edit(sid, edit_to_doc(edit))
        doc = client.reverify(sid, prescreen=False)

        direct = Session.from_file(SHIFTER)
        direct.verify()
        direct.edit(edit)
        inc = direct.reverify(prescreen=False)
        assert doc["incremental"] is True
        assert doc["ok"] == inc.ok
        assert doc["error_listing"] == inc.result.error_listing()
        assert doc["summary_listing"] == inc.result.summary_listing()
        assert doc["profile"]["pool"]["edits_shipped"] == 1

    def test_bad_jobs_rejected(self, client):
        for bad in (0, -1, "two", True):
            with pytest.raises(ServerError) as exc:
                client.create(path=SHIFTER, jobs=bad)
            assert exc.value.status == 400


class TestStaticOverHttp:
    def test_sta_matches_direct_doc(self, client):
        sid = client.create(path=SHIFTER)
        assert client.sta(sid) == sta_doc(Session.from_file(SHIFTER).sta())

    def test_fmax_matches_direct_doc(self, client):
        sid = client.create(path=SHIFTER)
        assert client.fmax(sid) == fmax_doc(Session.from_file(SHIFTER).fmax())
