"""Traceability suite: one test per normative statement of Chapter II.

Each test quotes (or closely paraphrases) a sentence of the thesis and
checks that this implementation obeys it.  Where the behaviour is covered
in depth elsewhere, the test here is the *minimal direct witness* of the
quoted sentence, so the mapping thesis-text -> code stays auditable.
"""

import pytest

from repro import Circuit, EXACT, TimingVerifier, VerifyConfig
from repro.core.values import (
    CHANGE,
    FALL,
    ONE,
    RISE,
    STABLE,
    UNKNOWN,
    ZERO,
    Value,
    value_or,
)
from repro.core.waveform import Waveform

P = 50_000


def circuit():
    return Circuit("spec", period_ns=50.0, clock_unit_ns=6.25)


class TestSection21Overview:
    def test_simulates_one_clock_period(self):
        """'The timing verification approach developed here simulates one
        clock period of a circuit.'  Every waveform spans exactly one
        period."""
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        r = TimingVerifier(c, EXACT).verify()
        for wf in r.cases[0].waveforms.values():
            assert sum(w for _v, w in wf.segments) == c.period_ps

    def test_signals_assumed_periodic(self):
        """'Signals have a periodic behavior with regard to when they can
        change their value relative to the central clock.'  A register
        output's stable value wraps across the cycle boundary."""
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        r = TimingVerifier(c, EXACT).verify()
        q = r.waveform("Q")
        assert q.value_at(0) == q.value_at(c.period_ps - 1)


class TestSection22ClockPeriod:
    def test_multiple_rates_use_lcm(self):
        """'If different parts ... run at different clock rates, then the
        period specified is the least common multiple': a 30 ns instruction
        unit and 15 ns execution unit verify in a 30 ns frame with the
        fast clock appearing twice."""
        c = Circuit("lcm", period_ns=30.0, clock_unit_ns=3.75)
        fast = c.net("EXEC CLK .P0-1,4-5")  # two pulses per frame
        fast.wire_delay_ps = (0, 0)
        c.reg("Q", clock=fast, data="D .S6-7", delay=(1.0, 2.0))
        r = TimingVerifier(c, EXACT).verify()
        assert len(r.waveform("EXEC CLK .P0-1,4-5").rising_windows()) == 2


class TestSection23TimeUnits:
    def test_clock_units_scale_with_period(self):
        """'This allows the relative timing within the design to
        automatically scale if the clock rate is slowed down.'"""
        for period in (50.0, 100.0):
            c = Circuit("scale", period_ns=period, clock_unit_ns=period / 8)
            c.buf("OUT", "D .S0-4", delay=(0.0, 0.0))
            r = TimingVerifier(c, EXACT).verify()
            d = r.waveform("D .S0-4")
            # Stable for exactly half the period, whatever the period.
            assert d.duration_of(STABLE) * 2 == c.period_ps


class TestSection241Values:
    def test_exactly_seven_values(self):
        """'Every signal ... has exactly one of seven values.'"""
        assert len(list(Value)) == 7

    def test_initial_value_is_unknown(self):
        """'U or UNKNOWN: initial value used for all signals.'"""
        from repro.core.engine import Engine

        c = circuit()
        c.gate("AND", "N", ["A .S0-6", "B .S0-6"])
        e = Engine(c, EXACT)
        e.initialize()
        assert e.waveform_of("N").is_fully_unknown


class TestSection242Functions:
    def test_worst_case_or_example(self):
        """'When the signal values STABLE and RISING are ORed together, the
        resultant signal value given is RISING.'"""
        assert value_or(STABLE, RISE) is RISE

    def test_chg_for_adders_and_parity_trees(self):
        """'Common examples are in the modeling of parity trees and adders,
        in which cases the Timing Verifier cares only when the outputs of
        these circuits are changing.'"""
        c = circuit()
        c.chg("SUM", ["A .S0-6", "B .S2-7"], delay=(2.0, 6.0))
        r = TimingVerifier(c, EXACT).verify()
        out = r.waveform("SUM")
        assert out.values_present() <= {STABLE, CHANGE}


class TestSection243Storage:
    def test_register_change_window_from_delays(self):
        """'The output of the register will be set to the CHANGE state
        during the time following the rising-edge of CLOCK as determined by
        the minimum and maximum delays of the register.'"""
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.0, 3.8))
        r = TimingVerifier(c, EXACT).verify()
        q = r.waveform("Q")
        assert q.value_at(13_501) is CHANGE  # 12.5 + 1.0 ..
        assert q.value_at(16_200) is CHANGE  # .. 12.5 + 3.8
        assert q.value_at(16_400) is STABLE

    def test_nonconstant_data_captures_stable(self):
        """'Unless the DATA input is a true or false during the
        rising-edge ... the output will be set to the STABLE value for the
        rest of the cycle.'"""
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-8", delay=(1.0, 2.0))
        r = TimingVerifier(c, EXACT).verify()
        assert r.waveform("Q").value_at(30_000) is STABLE

    def test_both_set_and_reset_undefined(self):
        """'If both the SET and RESET inputs are true, then the output is
        set to UNDEFINED.'"""
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6",
              set_="VCC", reset="VCC", delay=(1.0, 2.0))
        r = TimingVerifier(c, EXACT).verify()
        assert r.waveform("Q").is_fully_unknown


class TestSection25Assertions:
    def test_undefined_unasserted_assumed_stable(self):
        """'Undefined signals with no assertions are taken to be always
        stable ... also put on a special cross reference listing.'"""
        c = circuit()
        c.buf("OUT", "NO ASSERTION HERE")
        r = TimingVerifier(c, EXACT).verify()
        assert "NO ASSERTION HERE" in r.xref_assumed_stable
        assert r.waveform("NO ASSERTION HERE") == Waveform.constant(
            c.period_ps, STABLE
        )

    def test_assertion_part_of_the_name(self):
        """'Assertions ... are considered part of the signal name by the
        rest of the SCALD system': two spellings are two different nets."""
        c = circuit()
        a = c.net("SIG .S0-6")
        b = c.net("SIG .S0-7")
        assert a is not b
        assert a.base_name == b.base_name == "SIG"

    def test_single_time_means_one_unit(self):
        """'If a single time is given instead of a range, a time interval
        of one clock unit is assumed.'"""
        c = circuit()
        c.buf("OUT", "CK .C2,5")
        r = TimingVerifier(c, EXACT).verify()
        ck = r.waveform("CK .C2,5")
        assert ck.duration_of(ONE) == 2 * c.timebase.clock_unit_ps

    def test_plus_width_does_not_scale(self):
        """'This allows widths of clocks to be specified which don't scale
        with the cycle-time of the circuit.'"""
        for period in (50.0, 100.0):
            c = Circuit("w", period_ns=period, clock_unit_ns=period / 8)
            c.buf("OUT", "CK .P2+10.0")
            r = TimingVerifier(c, EXACT).verify()
            assert r.waveform("CK .P2+10.0").duration_of(ONE) == 10_000

    def test_default_skews_differ_by_precision(self):
        """'The precision clocks are assumed to have a skew of +1.0 to -1.0
        nsec ... the non-precision clocks ... +5.0 to -5.0 nsec.'"""
        c = circuit()
        c.gate("AND", "O", ["P .P2-3", "N .C2-3"])
        r = TimingVerifier(c, VerifyConfig()).verify()
        assert r.waveform("P .P2-3").skew == (-1_000, 1_000)
        assert r.waveform("N .C2-3").skew == (-5_000, 5_000)


class TestSection26Directives:
    def test_letters_consumed_level_by_level(self):
        """'If multiple directives are given after a signal ... the first
        letter refers to the first level of gating after the directive,
        the second refers to the second level.'"""
        c = circuit()
        c.gate("AND", "L1", ["CK .P2-3 &ZE", "VCC"], delay=(1.0, 2.0), name="g1")
        c.gate("AND", "L2", ["L1", "VCC"], delay=(1.0, 2.0), name="g2")
        r = TimingVerifier(c, EXACT).verify()
        assert r.waveform("L1").skew == (0, 0)  # Z zeroed level 1
        assert r.waveform("L2").skew == (0, 1_000)  # E left level 2 alone

    def test_h_assumes_enabling(self):
        """'This directive says ... the value of the [control] signal is
        enabling the gate, allowing the clock signal to always propagate
        through the gate.'"""
        c = circuit()
        c.gate("AND", "WE", ["CK .P2-3 &H", "WRITE .S0-8"], name="g")
        r = TimingVerifier(c, EXACT).verify()
        assert r.waveform("WE").duration_of(ONE) > 0


class TestSection27Cases:
    def test_stable_mapped_to_case_value(self):
        """'The Timing Verifier would then set the signal CONTROL SIGNAL to
        the value 0 whenever the circuit would normally set it to the value
        STABLE.'"""
        c = circuit()
        c.buf("OUT", "CONTROL .S0-8")
        c.add_case_by_name({"CONTROL .S0-8": 0})
        r = TimingVerifier(c, EXACT).verify()
        assert r.waveform("CONTROL .S0-8").value_at(0) is ZERO

    def test_cycles_simulated_equals_cases(self):
        """'The total number of cycles of the circuit simulated is then
        equal to the number of cases specified by the designer.'"""
        c = circuit()
        c.buf("OUT", "S .S0-8")
        for bit in (0, 1, 0):
            c.add_case_by_name({"S .S0-8": bit})
        r = TimingVerifier(c, EXACT).verify()
        assert len(r.cases) == 3


class TestSection28Skew:
    def test_skew_kept_separate_through_delay(self):
        """'The two input signals will be ORed together as if the gate had
        zero delay, and the value of the output signal will then be delayed
        by the minimum delay.  The skew field will then be set to the
        difference between the maximum and the minimum delay.'"""
        c = Circuit("skew", period_ns=50.0, clock_unit_ns=10.0)
        ck = c.net("X .P2-3")
        ck.wire_delay_ps = (0, 0)
        c.gate("OR", "Z", [ck, "GND"], delay=(5.0, 10.0), name="g")
        r = TimingVerifier(c, EXACT).verify()
        z = r.waveform("Z")
        assert z.value_at(25_000) is ONE  # shifted by the minimum delay
        assert z.skew == (0, 5_000)  # max - min

    def test_sum_of_value_widths_equals_period(self):
        """'The sum of all of the VALUE WIDTH fields on the linked list is
        required to exactly equal the cycle time.'"""
        with pytest.raises(ValueError):
            Waveform(P, [(ZERO, P - 1)])


class TestSection29Evaluation:
    def test_reevaluation_until_no_change(self):
        """'This process continues, reevaluating those primitives which
        have had their inputs changed, until all of the signals stop
        changing.'  Deterministic: a second verify produces identical
        waveforms."""
        c = circuit()
        c.gate("AND", "N1", ["A .S0-6", "B .S2-7"], delay=(1.0, 2.0))
        c.gate("OR", "N2", ["N1", "A .S0-6"], delay=(1.0, 2.0))
        r1 = TimingVerifier(c, EXACT).verify()
        r2 = TimingVerifier(c, EXACT).verify()
        assert r1.cases[0].waveforms == r2.cases[0].waveforms

    def test_checkers_run_after_fixed_point(self):
        """'The next step is to evaluate all of the set-up and hold times,
        and minimum pulse width checkers.'  Checker findings reflect the
        converged waveforms, not the initial UNKNOWNs."""
        c = circuit()
        c.gate("BUF", "SLOW", ["D .S0-6"], delay=(20.0, 30.0), name="b")
        c.setup_hold("SLOW", "CK .P2-3", setup=2.5, hold=0.0)
        r = TimingVerifier(c, EXACT).verify()
        assert any(v.kind.value == "setup" for v in r.violations)
