"""Tests reproducing the thesis's worked examples (the figure circuits)."""

from repro import EXACT, TimingVerifier
from repro.core.violations import ViolationKind
from repro.workloads import (
    fig_1_5_gated_clock,
    fig_2_5_register_file,
    fig_2_6_case_analysis,
    fig_3_12_alu_datapath,
    fig_4_1_correlation,
)


class TestFig15Hazard:
    def test_runt_pulse_detected_by_pulse_checker(self):
        """Figure 1-5: ENABLE reaches zero at 25 ns while CLOCK is high
        20-30 ns; the register clock shows a possible 5 ns runt pulse."""
        result = TimingVerifier(fig_1_5_gated_clock(), EXACT).verify()
        kinds = {v.kind for v in result.violations}
        assert ViolationKind.POSSIBLE_GLITCH in kinds

    def test_hazard_window_matches_figure(self):
        result = TimingVerifier(fig_1_5_gated_clock(), EXACT).verify()
        glitch = next(
            v for v in result.violations
            if v.kind is ViolationKind.POSSIBLE_GLITCH
        )
        assert glitch.window == (20_000, 25_000)

    def test_directive_reports_control_instability(self):
        """With &A on the clock input, the error is reported on the control
        signal directly (section 2.6)."""
        result = TimingVerifier(fig_1_5_gated_clock(use_directive=True), EXACT).verify()
        gating = [
            v for v in result.violations
            if v.kind is ViolationKind.GATING_STABILITY
        ]
        assert len(gating) == 1
        assert "ENABLE" in gating[0].signal

    def test_register_sees_possible_clocking(self):
        """The register output develops a change window from the runt."""
        result = TimingVerifier(fig_1_5_gated_clock(), EXACT).verify()
        q = result.waveform("Q")
        assert q.duration_of(q.value_at(22_000)) > 0  # changing region exists


class TestFig25RegisterFile:
    def test_exactly_the_two_figure_3_11_errors(self):
        """Figure 3-11 reports two setup errors: the RAM address checker
        missed by the full 3.5 ns, and the output register missed by about
        1 ns with its clock starting to rise at 49.0 ns."""
        result = TimingVerifier(fig_2_5_register_file()).verify()
        setups = [v for v in result.violations if v.kind is ViolationKind.SETUP]
        assert len(setups) == 2
        assert len(result.violations) == 2

        addr = next(v for v in setups if v.signal == "ADR")
        assert addr.required_ps == 3_500
        assert addr.missed_by_ps == 3_500  # "missed by the full 3.5 ns"

        outreg = next(v for v in setups if "RAM OUT" in v.signal)
        assert outreg.required_ps == 2_500
        assert 500 <= outreg.missed_by_ps <= 1_500  # paper: 1.0 ns

    def test_adr_not_stable_until_11_5(self):
        """The first message's detail: the address lines are not stable
        until 11.5 ns into the cycle, exactly when the clock starts rising."""
        result = TimingVerifier(fig_2_5_register_file()).verify()
        addr = next(
            v for v in result.violations
            if v.kind is ViolationKind.SETUP and v.signal == "ADR"
        )
        assert addr.signal_waveform is not None
        # Stable at exactly 11.5 ns (the materialized change region ends there).
        assert addr.signal_waveform.value_at(11_400).value in "CRF"
        assert str(addr.signal_waveform.value_at(11_600)) == "S"

    def test_output_register_clock_rises_at_49(self):
        result = TimingVerifier(fig_2_5_register_file()).verify()
        outreg = next(
            v for v in result.violations if "RAM OUT" in v.signal
        )
        r0, _r1 = outreg.window
        assert r0 == 49_000 - 2_500  # setup window starts 2.5 ns before 49.0

    def test_adr_mux_output_matches_figure_3_10(self):
        """Figure 3-10's first entry: ADR stable at cycle start, changing
        at 0.5 ns, stable at 5.5 ns, changing at 25.5 ns, stable at 30.5."""
        result = TimingVerifier(fig_2_5_register_file()).verify()
        adr = result.waveform("ADR").materialized()
        assert adr.describe() == "S 0.5 C 5.5 S 25.5 C 30.5 S"


class TestFig26CaseAnalysis:
    def test_without_cases_40ns_path(self):
        """Stable select: the verifier must assume both long legs can be
        selected, so the output settles 40 ns after the input."""
        result = TimingVerifier(fig_2_6_case_analysis(with_cases=False), EXACT).verify()
        out = result.waveform("OUTPUT")
        # INPUT settles at 10 ns; 40 ns of worst path puts the output at 50.
        assert out.describe() == "S 20.0 C 50.0 S"

    def test_with_cases_30ns_path(self):
        """Complementary selects: each case measures only 30 ns."""
        result = TimingVerifier(fig_2_6_case_analysis(with_cases=True), EXACT).verify()
        for case in (0, 1):
            out = result.waveform("OUTPUT", case=case)
            assert out.describe() == "S 30.0 C 40.0 S"

    def test_incremental_case_cost(self):
        """Section 2.7: between cases only affected parts re-evaluate."""
        result = TimingVerifier(fig_2_6_case_analysis(with_cases=True), EXACT).verify()
        assert result.cases[1].events <= result.cases[0].events


class TestFig312Datapath:
    def test_verifies_clean(self):
        """The S-1 slice with consistent interface assertions has no
        timing errors — the modular-verification success case."""
        result = TimingVerifier(fig_3_12_alu_datapath()).verify()
        assert result.ok, [str(v) for v in result.violations]

    def test_alu_output_honours_interface_assertion(self):
        result = TimingVerifier(fig_3_12_alu_datapath()).verify()
        alu_out = result.waveform("ALU OUT .S7-12")
        # Asserted stable from unit 7 (43.75 ns) through unit 12 (=4, 25 ns).
        assert alu_out.is_stable_in(43_750, 43_750 + 31_250)

    def test_smaller_width_also_clean(self):
        result = TimingVerifier(fig_3_12_alu_datapath(width=8)).verify()
        assert result.ok


class TestFig41Correlation:
    def test_false_hold_error_without_corr(self):
        """Figure 4-1: the verifier ignores the correlation between the
        skewed clock and the register's own output and reports a hold
        error that cannot actually occur."""
        result = TimingVerifier(fig_4_1_correlation(with_corr=False)).verify()
        kinds = {v.kind for v in result.violations}
        assert ViolationKind.HOLD in kinds

    def test_corr_delay_suppresses_it(self):
        """Figure 4-2: the CORR fictitious delay (at least as long as the
        clock skew) suppresses the false message."""
        result = TimingVerifier(fig_4_1_correlation(with_corr=True)).verify()
        assert result.ok, [str(v) for v in result.violations]

    def test_corr_does_not_mask_real_errors(self):
        """A genuinely too-short hold still reports with CORR in place."""
        result = TimingVerifier(
            fig_4_1_correlation(with_corr=True, hold_ns=12.0)
        ).verify()
        assert any(v.kind is ViolationKind.HOLD for v in result.violations)
