"""Tests for section-by-section verification (section 2.5.2)."""

from repro import Circuit, EXACT
from repro.modular import check_interfaces, verify_sections


def producer_section(assertion=".S4-8"):
    """A section that generates 'BUS DATA' and asserts when it is stable."""
    c = Circuit("producer", period_ns=50.0, clock_unit_ns=6.25)
    c.reg(f"BUS DATA {assertion}", clock="CK .P2-3", data="SRC .S0-6",
          delay=(1.5, 4.5), width=16)
    return c


def consumer_section(assertion=".S4-8"):
    """A section that consumes 'BUS DATA' relying on its assertion."""
    c = Circuit("consumer", period_ns=50.0, clock_unit_ns=6.25)
    c.reg("DST", clock="CK2 .P7-8", data=f"BUS DATA {assertion}",
          delay=(1.5, 4.5), width=16)
    c.setup_hold(f"BUS DATA {assertion}", "CK2 .P7-8", setup=2.5, hold=1.5,
                 width=16)
    return c


class TestInterfaceConsistency:
    def test_consistent_assertions_pass(self):
        sections = {"p": producer_section(), "c": consumer_section()}
        assert check_interfaces(sections) == []

    def test_mismatched_assertions_detected(self):
        """The producer claims stable 4-8 but the consumer was written
        against stable 3-8: SCALD flags the interface."""
        sections = {"p": producer_section(".S4-8"), "c": consumer_section(".S3-8")}
        issues = check_interfaces(sections)
        assert len(issues) == 1
        assert issues[0].base_name == "BUS DATA"
        assert "producer" not in issues[0].base_name

    def test_private_signals_ignored(self):
        """Signals appearing in only one section are not interfaces."""
        sections = {"p": producer_section()}
        assert check_interfaces(sections) == []


class TestVerifySections:
    def test_whole_design_verified(self):
        """Clean sections + consistent interfaces = the whole design is
        free of timing errors (the section 2.5.2 theorem)."""
        result = verify_sections(
            {"p": producer_section(), "c": consumer_section()}
        )
        assert result.ok
        assert "free of timing errors" in result.report()

    def test_section_violation_blocks_whole_design(self):
        bad_consumer = Circuit("consumer", period_ns=50.0, clock_unit_ns=6.25)
        # Clocked right at the interface signal's changing window.
        bad_consumer.reg("DST", clock="CK2 .P2-3", data="BUS DATA .S4-8",
                         delay=(1.5, 4.5), width=16)
        bad_consumer.setup_hold("BUS DATA .S4-8", "CK2 .P2-3",
                                setup=2.5, hold=1.5, width=16)
        result = verify_sections({"p": producer_section(), "c": bad_consumer})
        assert not result.ok
        assert result.total_violations >= 1
        assert "NOT verified" in result.report()

    def test_interface_issue_blocks_whole_design(self):
        result = verify_sections(
            {"p": producer_section(".S4-8"), "c": consumer_section(".S5-8")}
        )
        assert not result.ok
        assert result.interface_issues

    def test_producer_assertion_checked_against_hardware(self):
        """The producer's own run checks the generated signal against the
        assertion the consumers will rely on."""
        # Claim stable from unit 2.5 (15.6 ns) but the register is still
        # changing the bus until 17 ns: the producer section itself fails.
        result = verify_sections({"p": producer_section(".S2.5-8")}, EXACT)
        assert not result.ok

    def test_sections_verified_independently(self):
        """Each section's run never sees the other's netlist."""
        result = verify_sections(
            {"p": producer_section(), "c": consumer_section()}
        )
        assert "SRC .S0-6" in result.sections["p"].cases[0].waveforms
        assert "SRC .S0-6" not in result.sections["c"].cases[0].waveforms
