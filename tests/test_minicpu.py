"""Integration tests for the mini-CPU case study."""

import pytest

from repro import TimingVerifier
from repro.baselines import PathAnalyzer
from repro.core.violations import ViolationKind
from repro.hdl.writer import write_scald
from repro.hdl.expander import expand_source
from repro.modular import verify_sections
from repro.workloads.minicpu import BUGS, build_minicpu


class TestCleanDesign:
    def test_verifies_clean(self):
        result = TimingVerifier(build_minicpu()).verify()
        assert result.ok, [str(v) for v in result.violations]

    def test_every_constraint_kind_is_present(self):
        """The design actually exercises the checker machinery: setup/hold
        checkers, a rise/fall checker, pulse-width checkers, and two &H
        gated strobes."""
        c = build_minicpu()
        prims = {comp.prim.name for comp in c.iter_components()}
        assert "SETUP_HOLD_CHK" in prims
        assert "SETUP_RISE_HOLD_FALL_CHK" in prims
        assert "MIN_PULSE_WIDTH" in prims
        directives = {
            conn.directives
            for comp in c.iter_components()
            for _p, conn in comp.input_pins()
            if conn.directives
        }
        assert "H" in directives

    def test_sizes(self):
        c = build_minicpu(width=8)
        result = TimingVerifier(c).verify()
        assert result.ok

    def test_pipeline_waveforms_make_sense(self):
        result = TimingVerifier(build_minicpu()).verify()
        # The PC changes only around its 37.5 ns clock edge.
        pc = result.waveform("PC").materialized()
        assert pc.is_stable_in(50_000, 130_000)
        # The instruction register changes only at the cycle boundary.
        instr = result.waveform("INSTR REG").materialized()
        assert instr.is_stable_in(10_000, 95_000)

    def test_roundtrips_through_scald_text(self):
        c = build_minicpu()
        reloaded, _ = expand_source(write_scald(c))
        result = TimingVerifier(reloaded).verify()
        assert result.ok, [str(v) for v in result.violations]

    def test_modular_with_a_consumer(self):
        from repro import Circuit

        consumer = Circuit("mem stage", period_ns=100.0, clock_unit_ns=12.5)
        clk = consumer.net("PIPE CLK .P0-1")
        clk.wire_delay_ps = (0, 0)
        consumer.reg("MEM ADDR REG", clock=clk, data="ALU OUT .S3.4-8",
                     delay=(1.5, 4.5), width=16)
        result = verify_sections({"cpu": build_minicpu(), "mem": consumer})
        assert not result.interface_issues
        assert result.ok

        # A consumer written against a *different* assertion is caught.
        impatient = Circuit("mem2", period_ns=100.0, clock_unit_ns=12.5)
        impatient.reg("MEM ADDR REG", clock="PIPE CLK .P0-1",
                      data="ALU OUT .S2-8", delay=(1.5, 4.5), width=16)
        result = verify_sections({"cpu": build_minicpu(), "mem": impatient})
        assert result.interface_issues


class TestSeededBugs:
    def test_all_bugs_detected(self):
        for bug in BUGS:
            result = TimingVerifier(build_minicpu(bug=bug)).verify()
            assert not result.ok, f"bug {bug!r} went undetected"

    def test_slow_decode_hits_the_pc(self):
        result = TimingVerifier(build_minicpu(bug="slow-decode")).verify()
        assert any(
            v.kind is ViolationKind.SETUP and v.signal == "PC NEXT"
            for v in result.violations
        )

    def test_late_writeback_manifests_downstream(self):
        """Clocking the writeback register at unit 7 is locally fine for
        its own data — the error surfaces one stage later, where the
        delayed writeback ripples through the register file into the
        operand register's setup window.  Exactly the kind of
        at-a-distance effect the thesis built the tool to find early."""
        result = TimingVerifier(build_minicpu(bug="late-writeback")).verify()
        assert any(
            v.kind is ViolationKind.SETUP and v.signal == "RF OUT"
            for v in result.violations
        )

    def test_runt_strobe_caught_by_gating_check(self):
        result = TimingVerifier(build_minicpu(bug="runt-strobe")).verify()
        assert any(
            v.kind is ViolationKind.GATING_STABILITY for v in result.violations
        )

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError, match="unknown bug"):
            build_minicpu(bug="quantum-flux")

    def test_explanation_names_the_culprit(self):
        from repro.reporting.explain import explain_violation

        circuit = build_minicpu(bug="slow-decode")
        result = TimingVerifier(circuit).verify()
        setup = next(
            v for v in result.violations
            if v.kind is ViolationKind.SETUP and v.signal == "PC NEXT"
        )
        text = explain_violation(circuit, result, setup)
        # The trace walks to a concrete source and ends at the headline.
        assert "assertion" in text or "clocked" in text
        assert text.splitlines()[-1].lstrip().startswith("=>")


class TestAgainstPathSearch:
    def test_path_search_floods_on_the_cpu(self):
        """Gated strobes and the phase multiplexer defeat the value-blind
        baseline: it reports problems on the *clean* CPU."""
        clean = build_minicpu()
        assert TimingVerifier(clean).verify().ok
        report = PathAnalyzer(clean).analyze()
        assert not report.ok
        assert any(v.kind == "unclocked" for v in report.violations)
