"""Word-level evaluation: WordWave algebra and the bit-blast differential.

The word-level engine must be *undetectable* from the outside: for every
design, its violation report, assumed-stable cross-reference, and verdict
must match the bit-blasted scalar oracle byte-for-byte after canonical
per-bit expansion (``repro.wordcheck``).  These tests pin the WordWave
value type's canonical form, the engine's divergence bookkeeping, and the
differential across the example designs, a synthetic size x seed matrix,
and a hypothesis-driven sweep.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import CHANGE, ONE, STABLE, ZERO
from repro.core.verifier import TimingVerifier
from repro.core.waveform import Waveform
from repro.core.wordwave import WordWave, lane_groups, word_apply
from repro.hdl.expander import MacroExpander
from repro.netlist import bit_blast
from repro.netlist.bitblast import blast_width
from repro.netlist.circuit import Circuit
from repro.wordcheck import (
    assert_word_equivalent,
    per_bit_violation_lines,
    per_bit_xref,
)
from repro.workloads.synth import SynthConfig, generate

PERIOD = 50_000
DESIGNS = Path(__file__).resolve().parent.parent / "examples" / "designs"

W_STABLE = Waveform.constant(PERIOD, STABLE)
W_ZERO = Waveform.constant(PERIOD, ZERO)
W_ONE = Waveform.constant(PERIOD, ONE)
W_CHANGE = Waveform.constant(PERIOD, CHANGE)


class TestWordWave:
    def test_uniform_has_no_overrides(self):
        w = WordWave.uniform(32, W_STABLE)
        assert w.is_uniform
        assert w.width == 32
        assert all(w.lane(i) is W_STABLE for i in range(32))

    def test_plurality_base_canonicalization(self):
        # 5 stable lanes, 3 zero lanes: base must be the stable waveform
        # no matter how the list is ordered.
        lanes = [W_ZERO, W_STABLE, W_STABLE, W_ZERO, W_STABLE, W_STABLE,
                 W_ZERO, W_STABLE]
        w = WordWave.from_lanes(lanes)
        assert w.base == W_STABLE
        assert sorted(w.overrides) == [0, 3, 6]
        assert w.lanes() == lanes

    def test_equal_regardless_of_construction(self):
        a = WordWave(4, W_STABLE, {2: W_ZERO})
        b = WordWave.from_lanes([W_STABLE, W_STABLE, W_ZERO, W_STABLE])
        assert a == b
        assert hash(a) == hash(b)

    def test_override_equal_to_base_is_dropped(self):
        w = WordWave(4, W_STABLE, {1: Waveform.constant(PERIOD, STABLE)})
        assert w.is_uniform

    def test_lane_is_modulo_width(self):
        w = WordWave(4, W_STABLE, {1: W_ZERO})
        assert w.lane(5) == W_ZERO  # 5 % 4 == 1, the bit-blast convention
        assert w.lane(4) == W_STABLE

    def test_map_evaluates_once_per_distinct_lane(self):
        w = WordWave(8, W_STABLE, {3: W_ZERO, 5: W_ZERO})
        calls = []

        def invert(wf: Waveform) -> Waveform:
            calls.append(wf)
            return W_ONE if wf == W_ZERO else W_CHANGE

        out = w.map(invert)
        assert len(calls) == 2  # two divergence groups, not eight lanes
        assert out.lane(0) == W_CHANGE and out.lane(3) == W_ONE

    def test_map_recanonicalizes_merged_lanes(self):
        w = WordWave(4, W_STABLE, {2: W_ZERO})
        out = w.map(lambda wf: W_ONE)  # fn merges every lane back together
        assert out.is_uniform and out.base == W_ONE

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            WordWave(0, W_STABLE)

    def test_override_lane_bounds_checked(self):
        with pytest.raises(ValueError):
            WordWave(4, W_STABLE, {4: W_ZERO})

    def test_immutable(self):
        w = WordWave.uniform(2, W_STABLE)
        with pytest.raises(AttributeError):
            w.width = 3


class TestLaneGroups:
    def test_uniform_inputs_one_group(self):
        words = [WordWave.uniform(8, W_STABLE), WordWave.uniform(1, W_ONE)]
        groups = lane_groups(words, 8)
        assert len(groups) == 1
        assert groups[0][0] == list(range(8))

    def test_diverged_lane_splits_group(self):
        words = [WordWave(8, W_STABLE, {5: W_ZERO})]
        groups = lane_groups(words, 8)
        assert len(groups) == 2
        assert [g for g, _k in groups] == [[0, 1, 2, 3, 4, 6, 7], [5]]

    def test_word_apply_matches_per_lane(self):
        a = WordWave(8, W_STABLE, {1: W_ZERO, 6: W_ONE})
        b = WordWave.uniform(2, W_CHANGE)

        def f(x: Waveform, y: Waveform) -> Waveform:
            return x if x == W_ZERO else y

        out = word_apply(f, [a, b])
        assert out.width == 8
        for i in range(8):
            assert out.lane(i) == f(a.lane(i), b.lane(i))


def _verify_both(build):
    """(word result, blast result, word circuit) for one builder."""
    word_circuit = build()
    word = TimingVerifier(word_circuit).verify()
    blast = TimingVerifier(bit_blast(build())).verify()
    return word, blast, word_circuit


class TestDifferentialExamples:
    @pytest.mark.parametrize(
        "name", ["shifter", "multicycle", "recovery"]
    )
    @pytest.mark.parametrize("with_sdc", [False, True])
    def test_examples_byte_identical(self, name, with_sdc):
        path = DESIGNS / f"{name}.scald"
        sdc = DESIGNS / f"{name}.sdc"
        if with_sdc and not sdc.exists():
            pytest.skip(f"{name} has no .sdc file")

        def run(blasted: bool):
            # The CLI contract: constraints always resolve against the
            # vector circuit first, then --bit-blast expands it.
            circuit = MacroExpander.from_file(str(path)).expand()
            constraints = None
            if with_sdc:
                from repro.constraints import load_constraints

                constraints = load_constraints(str(sdc), circuit)
            if blasted:
                circuit = bit_blast(circuit)
            return TimingVerifier(circuit, constraints=constraints).verify()

        word_circuit = MacroExpander.from_file(str(path)).expand()
        word = run(blasted=False)
        blast = run(blasted=True)
        assert_word_equivalent(word, blast, word_circuit)

    def test_word_mode_saves_events(self):
        path = DESIGNS / "shifter.scald"
        word = TimingVerifier(MacroExpander.from_file(str(path)).expand()).verify()
        blast = TimingVerifier(
            bit_blast(MacroExpander.from_file(str(path)).expand())
        ).verify()
        assert blast.stats.events >= 3 * word.stats.events


class TestDifferentialSynthetic:
    @pytest.mark.parametrize(
        "chips,seed", [(60, 3), (120, 7), (120, 1980), (250, 7)]
    )
    def test_synth_matrix_byte_identical(self, chips, seed):
        def build():
            circuit, _stats = generate(
                SynthConfig(chips=chips, seed=seed)
            ).circuit()
            return circuit

        word, blast, circuit = _verify_both(build)
        assert_word_equivalent(word, blast, circuit)
        assert word.ok and blast.ok  # synth designs verify clean
        assert blast.stats.events >= 3 * word.stats.events

    @settings(max_examples=6, deadline=None)
    @given(
        chips=st.integers(min_value=30, max_value=150),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_synth_property(self, chips, seed):
        circuit, _stats = generate(SynthConfig(chips=chips, seed=seed)).circuit()
        word = TimingVerifier(circuit).verify()
        circuit2, _stats = generate(SynthConfig(chips=chips, seed=seed)).circuit()
        blast = TimingVerifier(bit_blast(circuit2)).verify()
        assert_word_equivalent(word, blast, circuit)


def _diverged_design() -> Circuit:
    """A vector datapath whose lane case keys force real divergence.

    ``EN [0]`` and ``EN [5]`` are case-pinned to 0, so those lanes of the
    AND output sit at constant 0 while the remaining six lanes carry the
    changing data — the setup/hold checker must report exactly those six
    lanes, lane-suffixed, identically to the blasted twin.
    """
    c = Circuit("wordviol", period_ns=50.0, clock_unit_ns=12.5)
    en = c.net("EN .S0-6", width=8)
    d = c.net("D .C1-2")
    q = c.net("Q", width=8)
    clk = c.net("PHI .P2-3")
    c.gate("AND", q, [d, en], delay=(2.0, 3.0), name="g", width=8)
    c.setup_hold(q, clk, setup=10.0, hold=2.0, name="su", width=8)
    c.add_case_by_name({"EN .S0-6 [0]": 0, "EN .S0-6 [5]": 0})
    return c


class TestDivergedLanes:
    def test_lane_case_violations_byte_identical(self):
        word, blast, circuit = _verify_both(_diverged_design)
        assert_word_equivalent(word, blast, circuit)
        # Six active lanes, one setup + one hold record each.
        assert len(word.violations) == 12
        assert {v.signal for v in word.violations} == {
            f"Q [{i}]" for i in (1, 2, 3, 4, 6, 7)
        }
        assert all(v.component.startswith("su [") for v in word.violations)

    def test_diverged_stats_counters(self):
        word, _blast, _circuit = _verify_both(_diverged_design)
        s = word.stats
        assert s.lane_splits >= 1
        assert s.vector_events >= 1
        assert s.events >= s.vector_events

    def test_uniform_run_has_no_splits(self):
        circuit, _stats = generate(SynthConfig(chips=60, seed=3)).circuit()
        result = TimingVerifier(circuit).verify()
        assert result.stats.lane_splits == 0
        assert result.stats.vector_events >= 1  # vector nets still store once


class TestBroadcastDrivers:
    """A narrow driver on a wider net broadcasts across every lane."""

    def test_fig_2_5_scalar_mux_broadcasts(self):
        from repro.workloads.figures import fig_2_5_register_file

        word, blast, circuit = _verify_both(fig_2_5_register_file)
        assert_word_equivalent(word, blast, circuit)
        # The word run reproduces the exact Figure 3-11 report: two
        # unsuffixed records, not a per-lane expansion.
        assert [v.component for v in word.violations] == [
            "rf/su addr",
            "out reg/su",
        ]

    def test_blast_width_covers_output_net(self):
        from repro.workloads.figures import fig_2_5_register_file

        circuit = fig_2_5_register_file()
        mux = circuit.components["adr mux"]
        assert mux.width == 1
        assert blast_width(circuit, mux) == 4  # ADR is a 4-bit net
        blasted = bit_blast(circuit)
        assert "adr mux [3]" in blasted.components
        # Every ADR lane is driven; none may be assumed stable.
        result = TimingVerifier(blasted).verify()
        assert not any("ADR [" in x for x in result.xref_assumed_stable)


class TestWordValueAccessor:
    def _engine(self):
        from repro.core.engine import Engine

        circuit = _diverged_design()
        engine = Engine(circuit)
        engine.initialize(circuit.cases[0])
        engine.run()
        return engine

    def test_word_value_exposes_lanes(self):
        engine = self._engine()
        word = engine.word_value("Q")
        assert isinstance(word, WordWave)
        assert word.width == 8
        assert not word.is_uniform
        assert word.lane(0) == word.lane(5)  # the two case-pinned lanes

    def test_scalar_net_is_uniform_word(self):
        engine = self._engine()
        word = engine.word_value("D .C1-2")
        assert word.width == 1 and word.is_uniform


class TestCanonicalExpansion:
    def test_unsuffixed_record_expands_by_blast_width(self):
        word, blast, circuit = _verify_both(
            __import__(
                "repro.workloads.figures", fromlist=["fig_2_5_register_file"]
            ).fig_2_5_register_file
        )
        lines = per_bit_violation_lines(word, circuit)
        # 32-wide out reg/su + 4-wide rf/su addr = 36 canonical lines.
        assert len(lines) == 36
        assert lines == per_bit_violation_lines(blast, circuit)

    def test_xref_expansion_matches(self):
        word, blast, circuit = _verify_both(_diverged_design)
        assert per_bit_xref(word, circuit) == per_bit_xref(blast, circuit)
