"""Tests for repro.lint: the rule registry, every rule, and the runner.

Each rule gets at least one positive case (the rule fires, with the right
``file:line`` span when the construct came from source) and one negative
case (a clean construct does not fire).
"""

import json

import pytest

from repro.lint import (
    Diagnostic,
    LintConfig,
    all_rules,
    get_rule,
    lint_circuit,
    lint_path,
    lint_source,
)
from repro.lint.cli import main as lint_main
from repro.netlist import Circuit, Connection

FIXTURE = "tests/fixtures/gated_clock.scald"


def circuit():
    return Circuit("t", period_ns=50.0, clock_unit_ns=6.25)


def ids(result):
    return {d.rule for d in result.diagnostics}


def only(result, rule_id):
    found = [d for d in result.diagnostics if d.rule == rule_id]
    assert found, f"expected {rule_id} to fire; got {ids(result)}"
    return found


HEADER = "design T;\nperiod 50 ns;\n"


def lint_text_src(body, config=None):
    return lint_source(HEADER + body, filename="t.scald", config=config)


class TestRegistry:
    def test_catalogue_is_nonempty_and_sorted(self):
        rules = all_rules()
        assert len(rules) >= 20
        assert [r.id for r in rules] == sorted(r.id for r in rules)

    def test_rules_have_docs_and_valid_severities(self):
        for r in all_rules():
            assert r.doc, f"{r.id} has no one-line description"
            assert r.severity in ("error", "warning", "info")
            assert r.surface in ("source", "circuit", "sdc")

    def test_structural_subset_matches_validate(self):
        structural = {r.id for r in all_rules() if r.structural}
        assert structural == {
            "missing-input",
            "checker-unconnected",
            "no-inputs",
            "unconnected-output",
            "inverted-output",
            "output-directives",
            "multiple-drivers",
            "driven-clock",
            "unused-case-signal",
        }

    def test_get_rule(self):
        assert get_rule("gated-clock").severity == "error"

    def test_severity_override_honoured(self):
        c = circuit()
        c.buf("DEAD", "A .S0-6", name="b")
        config = LintConfig(severities={"dead-net": "error"})
        result = lint_circuit(c, config)
        assert only(result, "dead-net")[0].severity == "error"
        assert result.exit_code() == 1

    def test_structural_only_ignores_downgrades(self):
        """The engine's error set can never be downgraded from validate()."""
        c = circuit()
        c.gate("AND", "X", ["A .S0-6"], name="g1")
        c.gate("OR", "X", ["B .S0-6"], name="g2")
        config = LintConfig(
            severities={"multiple-drivers": "info"}, structural_only=True
        )
        result = lint_circuit(c, config)
        assert only(result, "multiple-drivers")[0].severity == "error"

    def test_disabled_rule_does_not_run(self):
        c = circuit()
        c.buf("DEAD", "A .S0-6", name="b")
        result = lint_circuit(c, LintConfig(disabled=frozenset({"dead-net"})))
        assert "dead-net" not in ids(result)


class TestDiagnostics:
    def test_str_carries_location_rule_and_subject(self):
        d = Diagnostic(
            rule="x-rule", severity="error", message="boom",
            file="a.scald", line=7, component="g1",
        )
        assert str(d) == "a.scald:7: error[x-rule]: boom [g1]"

    def test_location_absent_for_api_circuits(self):
        d = Diagnostic(rule="r", severity="info", message="m")
        assert d.location() == ""
        assert str(d) == "info[r]: m"

    def test_to_dict_round_trips_through_json(self):
        d = Diagnostic(rule="r", severity="warning", message="m", net="N")
        assert json.loads(json.dumps(d.to_dict()))["net"] == "N"


class TestSourceRules:
    def test_unknown_primitive_fires_with_span(self):
        result = lint_text_src('prim FLUX f (OUT="X") delay=1:2;\n')
        d = only(result, "unknown-primitive")[0]
        assert (d.file, d.line) == ("t.scald", 3)
        assert "FLUX" in d.message

    def test_unknown_primitive_negative(self):
        result = lint_text_src('prim BUF b (I="A .S0-6", OUT="X") delay=1:2;\n')
        assert "unknown-primitive" not in ids(result)

    def test_unknown_primitive_inside_macro_body(self):
        result = lint_text_src(
            'macro "M" ();\n  param "Q";\n'
            '  prim WIDGET w (OUT="Q"/P) delay=1:2;\nendmacro;\n'
            'use "M" u (Q="X");\n'
        )
        assert only(result, "unknown-primitive")[0].line == 5

    def test_unknown_macro_fires_with_span(self):
        result = lint_text_src('use "NOPE" u (Q="X");\n')
        d = only(result, "unknown-macro")[0]
        assert (d.file, d.line) == ("t.scald", 3)

    def test_unknown_macro_negative(self):
        result = lint_text_src(
            'macro "M" ();\n  param "Q";\n'
            '  prim BUF b (I="A .S0-6", OUT="Q"/P) delay=1:2;\nendmacro;\n'
            'use "M" u (Q="X");\n'
        )
        assert "unknown-macro" not in ids(result)

    def test_macro_width_mismatch_fires_at_use_site(self):
        result = lint_text_src(
            'macro "M" (SIZE);\n  param "A"<0:SIZE-1>, "Q"<0:SIZE-1>;\n'
            '  prim BUF b (I="A"/P<0:SIZE-1>, OUT="Q"/P<0:SIZE-1>)'
            " delay=1:2 width=SIZE;\nendmacro;\n"
            'use "M" u (A="IN .S0-6"<0:3>, Q="OUT"<0:7>) SIZE=8;\n'
        )
        d = only(result, "macro-width-mismatch")[0]
        assert d.line == 7
        assert "8 bits wide" in d.message and "4 bits" in d.message

    def test_macro_width_match_negative(self):
        result = lint_text_src(
            'macro "M" (SIZE);\n  param "A"<0:SIZE-1>, "Q"<0:SIZE-1>;\n'
            '  prim BUF b (I="A"/P<0:SIZE-1>, OUT="Q"/P<0:SIZE-1>)'
            " delay=1:2 width=SIZE;\nendmacro;\n"
            'use "M" u (A="IN .S0-6"<0:7>, Q="OUT"<0:7>) SIZE=8;\n'
        )
        assert "macro-width-mismatch" not in ids(result)

    def test_unused_macro_fires_at_definition(self):
        result = lint_text_src(
            'prim BUF b (I="A .S0-6", OUT="X") delay=1:2;\n'
            'macro "SPARE" ();\n  param "Q";\n'
            '  prim BUF s (I="A"/P, OUT="Q"/P) delay=1:2;\nendmacro;\n'
        )
        d = only(result, "unused-macro")[0]
        assert d.line == 4 and d.severity == "info"

    def test_unused_macro_skips_included_libraries(self, tmp_path):
        """Macros pulled in via ``include`` are a palette, not dead code."""
        lib = tmp_path / "lib.scald"
        lib.write_text(
            'macro "SPARE" ();\n  param "Q";\n'
            '  prim BUF s (I="A .S0-6", OUT="Q"/P) delay=1:2;\nendmacro;\n'
        )
        top = tmp_path / "top.scald"
        top.write_text(
            HEADER + 'include "lib.scald";\n'
            'prim BUF b (I="A .S0-6", OUT="X") delay=1:2;\n'
        )
        assert "unused-macro" not in ids(lint_path(str(top)))

    def test_unused_macro_skips_library_files(self):
        """A pure macro library exports macros; none of them are 'dead'."""
        result = lint_source(
            'macro "EXPORTED" ();\n  param "Q";\n'
            '  prim BUF b (I="A"/P, OUT="Q"/P) delay=1:2;\nendmacro;\n',
            filename="lib.scald",
        )
        assert "unused-macro" not in ids(result)


class TestPipelineDiagnostics:
    def test_syntax_error_becomes_diagnostic(self):
        result = lint_source("design ;;;;\n", filename="bad.scald")
        d = only(result, "syntax-error")[0]
        assert d.severity == "error" and d.file == "bad.scald" and d.line >= 1

    def test_expand_error_becomes_diagnostic(self):
        result = lint_source(
            'design T;\nprim BUF b (I="A .S0-6", OUT="X") delay=1:2;\n',
            filename="t.scald",
        )
        d = only(result, "expand-error")[0]
        assert "period" in d.message

    def test_library_file_skips_circuit_surface(self):
        result = lint_path("src/repro/library/scald/ecl10k.scald")
        assert result.ok and not result.diagnostics


class TestStructuralRules:
    def test_missing_input(self):
        c = circuit()
        c.add("r", "REG", {"CLOCK": "CK .P2-3", "OUT": "Q"})
        d = only(lint_circuit(c), "missing-input")[0]
        assert "'DATA'" in d.message and d.component == "r"

    def test_missing_input_negative(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6")
        assert "missing-input" not in ids(lint_circuit(c))

    def test_checker_unconnected(self):
        c = circuit()
        c.add("chk", "SETUP_HOLD_CHK", {"I": "D .S0-6"}, setup=2.5, hold=1.5)
        d = only(lint_circuit(c), "checker-unconnected")[0]
        assert "'CK'" in d.message and "guards nothing" in d.message

    def test_checker_connected_negative(self):
        c = circuit()
        c.setup_hold("D .S0-6", "CK .P2-3", setup=2.5, hold=1.5)
        assert "checker-unconnected" not in ids(lint_circuit(c))

    def test_no_inputs_on_variadic_gate(self):
        c = circuit()
        c.add("g", "AND", {"OUT": "X"})
        only(lint_circuit(c), "no-inputs")

    def test_unconnected_output(self):
        c = circuit()
        c.add("r", "REG", {"CLOCK": "CK .P2-3", "DATA": "D .S0-6"})
        only(lint_circuit(c), "unconnected-output")

    def test_inverted_output(self):
        c = circuit()
        c.add("g", "BUF", {"I": "A .S0-6",
                           "OUT": Connection(net=c.net("B"), invert=True)})
        only(lint_circuit(c), "inverted-output")

    def test_output_directives(self):
        c = circuit()
        c.add("g", "BUF", {"I": "A .S0-6",
                           "OUT": Connection(net=c.net("B"), directives="H")})
        only(lint_circuit(c), "output-directives")

    def test_multiple_drivers(self):
        c = circuit()
        c.gate("AND", "X", ["A .S0-6"], name="g1")
        c.gate("OR", "X", ["B .S0-6"], name="g2")
        d = only(lint_circuit(c), "multiple-drivers")[0]
        assert "g1.OUT" in d.message and "g2.OUT" in d.message

    def test_driven_clock(self):
        c = circuit()
        c.gate("AND", "CK .P2-3", ["A .S0-6", "B .S0-6"], name="g1")
        c.reg("Q", clock="CK .P2-3", data="D .S0-6")
        d = only(lint_circuit(c), "driven-clock")[0]
        assert d.severity == "warning"

    def test_unused_case_signal(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6")
        c.add_case_by_name({"ORPHAN": 1})
        only(lint_circuit(c), "unused-case-signal")

    def test_used_case_signal_negative(self):
        c = circuit()
        c.gate("AND", "X", ["SEL .S0-6", "D .S0-6"], name="g")
        c.add_case_by_name({"SEL .S0-6": 1})
        assert "unused-case-signal" not in ids(lint_circuit(c))


class TestCombinationalLoop:
    def test_two_gate_loop_fires_once(self):
        c = circuit()
        c.add("n1", "NOT", {"I": "A", "OUT": "B"}, delay=(1.0, 2.0))
        c.add("n2", "NOT", {"I": "B", "OUT": "A"}, delay=(1.0, 2.0))
        found = only(lint_circuit(c), "combinational-loop")
        assert len(found) == 1
        assert "n1" in found[0].message and "n2" in found[0].message

    def test_self_loop_fires(self):
        c = circuit()
        c.gate("AND", "X", ["X", "A .S0-6"], name="g")
        only(lint_circuit(c), "combinational-loop")

    def test_registered_cut_negative(self):
        """A feedback path through a register is a legal synchronous loop."""
        c = circuit()
        c.gate("AND", "D", ["Q", "A .S0-6"], name="g")
        c.reg("Q", clock="CK .P2-3", data="D")
        assert "combinational-loop" not in ids(lint_circuit(c))


class TestGatedClock:
    def test_undirected_clock_gate_fires(self):
        c = circuit()
        c.gate("AND", "GCLK", ["CK .P2-3", "EN .S0-6"], name="g")
        d = only(lint_circuit(c), "gated-clock")[0]
        assert d.severity == "error" and "Figure 1-5" in d.message

    def test_stability_directive_negative(self):
        c = circuit()
        ck = Connection(net=c.net("CK .P2-3"), directives="H")
        c.gate("AND", "GCLK", [ck, "EN .S0-6"], name="g")
        assert "gated-clock" not in ids(lint_circuit(c))

    def test_inherited_directive_negative(self):
        """A letter written upstream rides the waveform one level per gate."""
        c = circuit()
        ck = Connection(net=c.net("CK .P2-3"), directives="EA")
        c.buf("CKB", ck, name="b")
        c.gate("AND", "GCLK", ["CKB", "EN .S0-6"], name="g")
        assert "gated-clock" not in ids(lint_circuit(c))

    def test_exhausted_inherited_directive_fires(self):
        """The upstream string ran out one level too early."""
        c = circuit()
        ck = Connection(net=c.net("CK .P2-3"), directives="E")
        c.buf("CKB", ck, name="b")
        c.gate("AND", "GCLK", ["CKB", "EN .S0-6"], name="g")
        only(lint_circuit(c), "gated-clock")

    def test_single_input_gate_negative(self):
        """A buffer on a clock is distribution, not gating."""
        c = circuit()
        c.buf("CKB", "CK .P2-3", name="b")
        assert "gated-clock" not in ids(lint_circuit(c))


class TestShortDirective:
    def test_string_shorter_than_depth_fires(self):
        c = circuit()
        a = Connection(net=c.net("A .S0-6"), directives="E")
        c.gate("AND", "N1", [a, "B .S0-6"], name="g1")
        c.gate("AND", "N2", ["N1", "B .S0-6"], name="g2")
        d = only(lint_circuit(c), "short-directive")[0]
        assert d.component == "g1" and "2 levels deep" in d.message

    def test_string_covering_depth_negative(self):
        c = circuit()
        a = Connection(net=c.net("A .S0-6"), directives="EE")
        c.gate("AND", "N1", [a, "B .S0-6"], name="g1")
        c.gate("AND", "N2", ["N1", "B .S0-6"], name="g2")
        assert "short-directive" not in ids(lint_circuit(c))

    def test_depth_stops_at_storage_elements(self):
        """Registers don't consume directive letters (section 2.6)."""
        c = circuit()
        a = Connection(net=c.net("A .S0-6"), directives="E")
        c.gate("AND", "D", [a, "B .S0-6"], name="g1")
        c.reg("Q", clock="CK .P2-3", data="D")
        assert "short-directive" not in ids(lint_circuit(c))


class TestCaseOnClock:
    def test_case_on_clock_fires(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6")
        c.add_case_by_name({"CK .P2-3": 1})
        d = only(lint_circuit(c), "case-on-clock")[0]
        assert "never STABLE" in d.message

    def test_case_on_stable_signal_negative(self):
        c = circuit()
        c.gate("AND", "X", ["SEL .S0-6", "D .S0-6"], name="g")
        c.add_case_by_name({"SEL .S0-6": 1})
        assert "case-on-clock" not in ids(lint_circuit(c))


class TestUnassertedInput:
    def test_plain_input_fires(self):
        c = circuit()
        c.gate("AND", "X", ["PLAIN", "B .S0-6"], name="g")
        d = only(lint_circuit(c), "unasserted-input")[0]
        assert d.net == "PLAIN" and "assume" in d.message

    def test_asserted_input_negative(self):
        c = circuit()
        c.gate("AND", "X", ["A .S0-6", "B .S0-6"], name="g")
        assert "unasserted-input" not in ids(lint_circuit(c))

    def test_supply_rails_negative(self):
        c = circuit()
        c.gate("AND", "X", ["GND", "VCC"], name="g")
        assert "unasserted-input" not in ids(lint_circuit(c))

    def test_case_signal_negative(self):
        """Case analysis supplies the value deliberately (section 2.7)."""
        c = circuit()
        c.gate("AND", "X", ["SEL", "B .S0-6"], name="g")
        c.add_case_by_name({"SEL": 1})
        assert "unasserted-input" not in ids(lint_circuit(c))

    def test_driven_net_negative(self):
        c = circuit()
        c.buf("MID", "A .S0-6", name="b")
        c.gate("AND", "X", ["MID", "B .S0-6"], name="g")
        assert "unasserted-input" not in ids(lint_circuit(c))


class TestAssertionRules:
    def test_conflicting_assertions_on_alias_chain(self):
        c = circuit()
        c.net("A .S0-6")
        c.net("B .P2-3")
        c.alias("A .S0-6", "B .P2-3")
        d = only(lint_circuit(c), "conflicting-assertions")[0]
        assert d.severity == "error" and "silently discarded" in d.message

    def test_alias_with_one_assertion_negative(self):
        c = circuit()
        c.alias("A .S0-6", "B")
        assert "conflicting-assertions" not in ids(lint_circuit(c))

    def test_assertion_mismatch_same_base(self):
        c = circuit()
        c.reg("Q1", clock="CK .P2-3", data="D .S0-6", name="r1")
        c.reg("Q2", clock="CK .P4-5", data="D .S0-6", name="r2")
        d = only(lint_circuit(c), "assertion-mismatch")[0]
        assert "'CK'" in d.message and "distinct" in d.message

    def test_assertion_mismatch_not_duplicated_for_aliases(self):
        """Aliased nets are one signal: the error rule covers them."""
        c = circuit()
        c.net("A .S0-6")
        c.net("A .P2-3")
        c.alias("A .S0-6", "A .P2-3")
        result = lint_circuit(c)
        assert "conflicting-assertions" in ids(result)
        assert "assertion-mismatch" not in ids(result)

    def test_consistent_assertions_negative(self):
        c = circuit()
        c.reg("Q1", clock="CK .P2-3", data="D .S0-6", name="r1")
        c.reg("Q2", clock="CK .P2-3", data="D .S0-6", name="r2")
        assert "assertion-mismatch" not in ids(lint_circuit(c))


class TestSkewedPulseCheck:
    def test_nonprecision_clock_default_skew_fires(self):
        c = circuit()
        c.min_pulse_width("CK .C2-3", min_high=4.0, name="mpw")
        d = only(lint_circuit(c), "skewed-pulse-check")[0]
        assert "±5 ns" in d.message or "5 ns" in d.message

    def test_precision_clock_negative(self):
        c = circuit()
        c.min_pulse_width("CK .P2-3", min_high=4.0, name="mpw")
        assert "skewed-pulse-check" not in ids(lint_circuit(c))

    def test_explicit_skew_negative(self):
        c = circuit()
        c.min_pulse_width("CK .C2-3(1,1)", min_high=4.0, name="mpw")
        assert "skewed-pulse-check" not in ids(lint_circuit(c))


class TestDeadNet:
    def test_driven_unread_net_fires_as_info(self):
        c = circuit()
        c.buf("DEAD", "A .S0-6", name="b")
        d = only(lint_circuit(c), "dead-net")[0]
        assert d.severity == "info" and d.net == "DEAD"

    def test_read_net_negative(self):
        c = circuit()
        c.buf("MID", "A .S0-6", name="b1")
        c.buf("OUT1", "MID", name="b2")
        assert not [d for d in lint_circuit(c).diagnostics
                    if d.rule == "dead-net" and d.net == "MID"]


class TestSuppression:
    def test_pragma_suppresses_on_next_line(self):
        src = HEADER + (
            "-- lint: disable=gated-clock\n"
            'prim AND g (I1="CK .P2-3", I2="EN .S0-6", OUT="GCLK") delay=1:2;\n'
            'prim REG r (CLOCK="GCLK", DATA="D .S0-6", OUT="Q") delay=1.5:4.5;\n'
        )
        result = lint_source(src, filename="t.scald")
        assert "gated-clock" not in ids(result)

    def test_pragma_only_covers_its_own_rule(self):
        src = HEADER + (
            "-- lint: disable=dead-net\n"
            'prim AND g (I1="CK .P2-3", I2="EN .S0-6", OUT="GCLK") delay=1:2;\n'
            'prim REG r (CLOCK="GCLK", DATA="D .S0-6", OUT="Q") delay=1.5:4.5;\n'
        )
        result = lint_source(src, filename="t.scald")
        assert "gated-clock" in ids(result)

    def test_all_wildcard(self):
        src = HEADER + (
            'prim AND g (I1="CK .P2-3", I2="EN .S0-6", OUT="GCLK")'
            " delay=1:2;  -- lint: disable=all\n"
            'prim REG r (CLOCK="GCLK", DATA="D .S0-6", OUT="Q") delay=1.5:4.5;\n'
        )
        result = lint_source(src, filename="t.scald")
        assert "gated-clock" not in ids(result)

    def test_other_lines_unaffected(self):
        src = HEADER + (
            'prim AND g (I1="CK .P2-3", I2="EN .S0-6", OUT="GCLK") delay=1:2;\n'
            "-- lint: disable=gated-clock (wrong place: two lines below)\n"
        )
        result = lint_source(src, filename="t.scald")
        assert "gated-clock" in ids(result)


class TestFixtureSpans:
    def test_fixture_reports_both_hazards_with_lines(self):
        result = lint_path(FIXTURE)
        gated = only(result, "gated-clock")[0]
        short = only(result, "short-directive")[0]
        assert gated.file == FIXTURE and gated.line == 10
        assert short.file == FIXTURE and short.line == 13
        assert result.exit_code() == 1

    def test_macro_expanded_components_keep_use_site_span(self):
        """Provenance survives expansion: diagnostics on expanded components
        point at real source lines."""
        src = HEADER + (
            'macro "BADGATE" ();\n  param "CK", "Q";\n'
            '  prim AND g (I1="CK"/P, I2="EN .S0-6", OUT="Q"/P) delay=1:2;\n'
            "endmacro;\n"
            'use "BADGATE" u (CK="MAIN CLK .P2-3", Q="GCLK");\n'
            'prim REG r (CLOCK="GCLK", DATA="D .S0-6", OUT="Q1") delay=1.5:4.5;\n'
        )
        result = lint_source(src, filename="t.scald")
        d = only(result, "gated-clock")[0]
        assert d.file == "t.scald" and d.line == 5  # the prim inside the macro


class TestLintCli:
    def test_clean_design_exits_zero(self, capsys):
        assert lint_main(["examples/designs/shifter.scald"]) == 0
        assert "dead-net" in capsys.readouterr().out

    def test_fixture_exits_nonzero_with_both_findings(self, capsys):
        assert lint_main([FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "gated-clock" in out and "short-directive" in out
        assert f"{FIXTURE}:10" in out

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        path = tmp_path / "w.scald"
        path.write_text(
            HEADER
            + 'prim AND g (I1="PLAIN", I2="B .S0-6", OUT="X") delay=1:2;\n'
            + 'prim BUF b (I="X", OUT="Y") delay=1:2;\n'
        )
        assert lint_main([str(path)]) == 0
        capsys.readouterr()
        assert lint_main(["--strict", str(path)]) == 1

    def test_json_format(self, capsys):
        assert lint_main(["--format", "json", FIXTURE]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["errors"] == 1
        assert any(d["rule"] == "gated-clock" for d in doc["diagnostics"])

    def test_disable_flag(self, capsys):
        code = lint_main(["--disable", "gated-clock,short-directive", FIXTURE])
        assert code == 0
        assert "gated-clock" not in capsys.readouterr().out

    def test_unknown_disable_rejected(self, capsys):
        assert lint_main(["--disable", "no-such-rule", FIXTURE]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "gated-clock" in out and "structural" in out

    def test_no_designs_is_usage_error(self, capsys):
        assert lint_main([]) == 2

    def test_missing_file_is_usage_error(self, capsys):
        assert lint_main(["no/such/file.scald"]) == 2

    def test_multiple_files_prefixed(self, capsys):
        code = lint_main(["examples/designs/shifter.scald", FIXTURE])
        assert code == 1
        out = capsys.readouterr().out
        assert "== examples/designs/shifter.scald ==" in out

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path, capsys):
        path = tmp_path / "bad.scald"
        path.write_text("design ;;;;\n")
        assert lint_main([str(path)]) == 1
        assert "syntax-error" in capsys.readouterr().out
