"""Tests for the SDC constraint front-end (``repro.constraints``).

Four layers: the tokenizer/parser on strings (total — bad input becomes
findings, never exceptions), name resolution against expanded circuits,
the hand-computed fixture designs in ``examples/designs`` (multicycle and
recovery/removal with expected slack values worked out in their header
comments), and the CLI surface (``--sdc`` on all three tools, JSON-purity
envelopes, suppression pragmas for the dotted ``sdc.*`` rule family).
"""

import json

import pytest

from repro import Circuit, TimingVerifier, VerifyConfig
from repro.constraints import (
    CheckerMods,
    ConstraintSet,
    load_constraints,
    parse_sdc,
    resolve,
)
from repro.constraints.sdc import ns_to_ps
from repro.core.violations import ViolationKind
from repro.hdl.expander import MacroExpander
from repro.sta import analyze, check_encloses, compute_slack, compute_windows

SHIFTER = "examples/designs/shifter.scald"
SHIFTER_SDC = "examples/designs/shifter.sdc"
MULTICYCLE = "examples/designs/multicycle.scald"
MULTICYCLE_SDC = "examples/designs/multicycle.sdc"
RECOVERY = "examples/designs/recovery.scald"
RECOVERY_SDC = "examples/designs/recovery.sdc"


def expand(path):
    return MacroExpander.from_file(path).expand()


def circuit():
    return Circuit("p", period_ns=50.0, clock_unit_ns=6.25)


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


class TestParser:
    def test_ns_to_ps(self):
        assert ns_to_ps("2.5") == 2_500
        assert ns_to_ps("50") == 50_000
        assert ns_to_ps("0.001") == 1

    def test_basic_command(self):
        cmds, findings = parse_sdc('create_clock -period 50 -name CK "MAIN CLK"')
        assert findings == []
        (cmd,) = cmds
        assert cmd.name == "create_clock"
        assert cmd.flags["-period"] == "50"
        assert cmd.flags["-name"] == "CK"
        assert cmd.target_names() == ("MAIN CLK",)

    def test_selector_and_list(self):
        cmds, findings = parse_sdc(
            "set_false_path -from [get_ports {A B}] -to {X Y}"
        )
        assert findings == []
        (cmd,) = cmds
        assert cmd.flag_names("-from") == ("A", "B")
        assert cmd.flag_names("-to") == ("X", "Y")

    def test_comments_continuations_semicolons(self):
        cmds, findings = parse_sdc(
            "# a comment\n"
            "create_clock -period 50 \\\n"
            "    -name CK MAINCLK  ; set_clock_uncertainty 0.1 CK\n"
        )
        assert findings == []
        assert [c.name for c in cmds] == [
            "create_clock", "set_clock_uncertainty",
        ]

    def test_unknown_command_is_a_finding_not_an_error(self):
        cmds, findings = parse_sdc("set_dont_touch foo\n", filename="x.sdc")
        assert cmds == []
        (f,) = findings
        assert f.rule == "sdc.unknown-command"
        assert f.severity == "warning"
        assert f.line == 1

    def test_malformed_flag_is_a_syntax_error_finding(self):
        cmds, findings = parse_sdc("create_clock -period\n")
        assert cmds == []
        (f,) = findings
        assert f.rule == "sdc.syntax-error"
        assert f.severity == "error"

    def test_line_numbers_survive_continuations(self):
        _, findings = parse_sdc(
            "create_clock -period 50 CK\n\nbogus_cmd x \\\n  y\n"
        )
        (f,) = findings
        assert f.line == 3


# ---------------------------------------------------------------------------
# CheckerMods arithmetic (the single place effective guards are computed)
# ---------------------------------------------------------------------------


class TestCheckerMods:
    def test_default_is_identity(self):
        assert CheckerMods().effective(2_500, 1_500, 50_000) == (2_500, 1_500)
        assert CheckerMods().is_default

    def test_multicycle_setup_folds_below_zero(self):
        # N=2 on the folded single-period axis: setup side fully waived.
        s, h = CheckerMods(setup_cycles=2).effective(2_500, 1_500, 50_000)
        assert s == 2_500 - 50_000
        assert s <= 0 and h == 1_500

    def test_multicycle_hold(self):
        s, h = CheckerMods(hold_cycles=1).effective(2_500, 1_500, 50_000)
        assert s == 2_500 and h == 1_500 - 50_000

    def test_uncertainty_widens_both_sides(self):
        s, h = CheckerMods(uncertainty_ps=100).effective(2_500, 1_500, 50_000)
        assert (s, h) == (2_600, 1_600)


# ---------------------------------------------------------------------------
# resolution against an expanded circuit
# ---------------------------------------------------------------------------


class TestResolve:
    def test_shifter_sdc_resolves_clean(self):
        c = expand(SHIFTER)
        cs = load_constraints(SHIFTER_SDC, c)
        assert cs.ok and cs.findings == []
        assert set(cs.clock_nets.values()) == {"MAIN CLK .P2-3"}
        # The 0.1 ns uncertainty lands on both registers' checkers.
        assert {m.uncertainty_ps for m in cs.checker_mods.values()} == {100}
        assert set(cs.checker_mods) == {"inreg/su", "outreg/su"}

    def test_period_mismatch_is_warned_design_wins(self):
        c = expand(SHIFTER)
        cmds, _ = parse_sdc('create_clock -period 10 "MAIN CLK .P2-3"')
        cs = resolve(cmds, c)
        assert any(f.rule == "sdc.period-mismatch" for f in cs.findings)
        assert cs.ok  # warning, not error

    def test_unresolved_target_is_an_error(self):
        c = expand(SHIFTER)
        cmds, _ = parse_sdc("set_false_path -to NOSUCHTHING")
        cs = resolve(cmds, c)
        assert not cs.ok
        assert cs.errors[0].rule == "sdc.unresolved-pin"

    def test_false_path_beats_multicycle_with_warning(self):
        c = expand(SHIFTER)
        cmds, _ = parse_sdc(
            "set_false_path -to inreg/su\n"
            "set_multicycle_path 2 -setup -to inreg/su\n"
        )
        cs = resolve(cmds, c)
        assert cs.checker_mods["inreg/su"].waived
        assert any(f.rule == "sdc.conflicting-path" for f in cs.findings)

    def test_uncertainty_exceeding_period_is_an_error(self):
        c = expand(SHIFTER)
        cmds, _ = parse_sdc("set_clock_uncertainty 60 MAINCLK\n")
        cs = resolve(
            parse_sdc(
                'create_clock -period 50 -name MAINCLK "MAIN CLK .P2-3"\n'
                "set_clock_uncertainty 60 MAINCLK\n"
            )[0],
            c,
        )
        assert any(
            f.rule == "sdc.uncertainty-exceeds-period" for f in cs.errors
        )

    def test_default_mods_are_dropped(self):
        # A 1-cycle multicycle is the default; it must not mark checkers
        # as "constrained" (baseline invariance hinges on this).
        c = expand(SHIFTER)
        cmds, _ = parse_sdc("set_multicycle_path 1 -setup -to inreg/su")
        cs = resolve(cmds, c)
        assert cs.checker_mods == {}

    def test_constraint_set_is_picklable(self):
        import pickle

        c = expand(SHIFTER)
        cs = load_constraints(SHIFTER_SDC, c)
        assert pickle.loads(pickle.dumps(cs)).checker_mods == cs.checker_mods


# ---------------------------------------------------------------------------
# the hand-computed fixtures (values derived in the .scald header comments)
# ---------------------------------------------------------------------------


class TestMulticycleFixture:
    def test_unconstrained_fails_setup_by_1500_ps(self):
        c = expand(MULTICYCLE)
        result = TimingVerifier(c).verify()
        assert not result.ok
        assert {v.kind for v in result.violations} == {ViolationKind.SETUP}
        a = analyze(c)
        (rec,) = a.slack
        # -1500 ideal penetration plus the storage model's 1 ps change
        # markers (see the fixture's header comment).
        assert rec.slack_ps == -1_502

    def test_multicycle_waives_setup_keeps_hold(self):
        c = expand(MULTICYCLE)
        cs = load_constraints(MULTICYCLE_SDC, c)
        assert cs.ok
        assert cs.checker_mods["su"].setup_cycles == 2
        result = TimingVerifier(c, constraints=cs).verify()
        assert result.ok
        a = analyze(c, constraints=cs)
        (rec,) = a.slack
        assert rec.slack_ps == 998
        assert rec.setup_eff_ps is not None and rec.setup_eff_ps <= 0

    def test_crosscheck_verdicts_hold(self):
        c = expand(MULTICYCLE)
        cs = load_constraints(MULTICYCLE_SDC, c)
        result = TimingVerifier(c, constraints=cs).verify()
        windows = compute_windows(c, constraints=cs)
        slack = compute_slack(c, windows, constraints=cs)
        cc = check_encloses(result, windows, slack=slack)
        assert cc.ok and cc.verdicts_checked >= 1


class TestRecoveryFixture:
    def test_design_is_clean_without_constraints(self):
        c = expand(RECOVERY)
        assert TimingVerifier(c).verify().ok

    def test_expected_recovery_and_removal_slack(self):
        c = expand(RECOVERY)
        cs = load_constraints(RECOVERY_SDC, c)
        assert cs.ok
        a = analyze(c, constraints=cs)
        by_kind = {
            r.kind: r.slack_ps
            for r in a.slack
            if r.component == "hold" and r.signal == "CLEAR .S0-6"
        }
        assert by_kind == {"recovery": 7_500, "removal": 11_500}

    def test_engine_agrees_recovery_clean(self):
        c = expand(RECOVERY)
        cs = load_constraints(RECOVERY_SDC, c)
        result = TimingVerifier(c, constraints=cs).verify()
        assert result.ok
        windows = compute_windows(c, constraints=cs)
        slack = compute_slack(c, windows, constraints=cs)
        cc = check_encloses(result, windows, slack=slack)
        assert cc.ok

    def test_tight_recovery_fails_both_analyses(self):
        # Push the margin past the 7.5 ns gap: both sides must flag it.
        # The guard wraps to 11.5 - 12 = -0.5 ns = 49.5 ns on the circular
        # axis, and the CLEAR changes (37.5..50 ns) reach 0.5 ns into it.
        c = expand(RECOVERY)
        cmds, _ = parse_sdc(
            'create_clock -period 50 -name MAINCLK "MAIN CLK .P2-3"\n'
            "set_recovery 12 hold\n"
        )
        cs = resolve(cmds, c)
        assert cs.ok
        a = analyze(c, constraints=cs)
        (rec,) = [
            r for r in a.slack
            if r.kind == "recovery" and r.signal == "CLEAR .S0-6"
        ]
        assert rec.slack_ps == -500
        result = TimingVerifier(c, constraints=cs).verify()
        assert any(
            v.kind == ViolationKind.RECOVERY for v in result.violations
        )


# ---------------------------------------------------------------------------
# latch time borrowing
# ---------------------------------------------------------------------------


class TestBorrow:
    # Zero wire delay keeps the transparency window at its asserted
    # 13.5..17.75 ns; the 14:16 ns buffer lands the DIN changes at
    # 1.5..16 ns, i.e. 2.5 ns past the latch opening.
    CONFIG = VerifyConfig(default_wire_delay_ns=(0.0, 0.0))

    def _latch_circuit(self):
        c = circuit()
        c.buf("D", "DIN .S0-6", delay=(14.0, 16.0))
        c.latch("Q", "EN .P2-3", "D", delay=(1.0, 2.0), name="lat")
        return c

    def test_borrow_always_reported_informationally(self):
        a = analyze(self._latch_circuit(), self.CONFIG)
        (rec,) = [r for r in a.slack if r.kind == "borrow"]
        # 2500 ideal plus the 1 ps boundary change marker.
        assert rec.borrow_ps == 2_501
        assert rec.slack_ps is None  # no cap: a report, not a check

    def test_borrow_cap_fails_then_passes(self):
        c = self._latch_circuit()
        cmds, _ = parse_sdc("set_max_time_borrow 1 lat")
        cs = resolve(cmds, c)
        assert cs.ok
        a = analyze(c, self.CONFIG, constraints=cs)
        (rec,) = [r for r in a.slack if r.kind == "borrow"]
        assert rec.slack_ps is not None and rec.slack_ps < 0
        result = TimingVerifier(c, self.CONFIG, constraints=cs).verify()
        assert any(v.kind == ViolationKind.BORROW for v in result.violations)

        # A cap above the worst borrow (but inside the transparency
        # window, so the guard is non-empty) passes both analyses.
        cmds, _ = parse_sdc("set_max_time_borrow 3 lat")
        cs = resolve(cmds, c)
        a = analyze(c, self.CONFIG, constraints=cs)
        (rec,) = [r for r in a.slack if r.kind == "borrow"]
        assert rec.slack_ps is not None and rec.slack_ps >= 0
        assert TimingVerifier(c, self.CONFIG, constraints=cs).verify().ok


# ---------------------------------------------------------------------------
# input/output delays
# ---------------------------------------------------------------------------


class TestIoDelay:
    def _port_circuit(self):
        c = circuit()
        c.reg("Q", "CK .P2-3", "PORT", delay=(1.0, 2.0), name="r")
        c.setup_hold("PORT", "CK .P2-3", setup=2.5, hold=1.5, name="su")
        return c

    def test_input_delay_paints_identical_change_windows(self):
        c = self._port_circuit()
        cmds, _ = parse_sdc(
            'create_clock -period 50 -name CK "CK .P2-3"\n'
            "set_input_delay 3 -max -clock CK PORT\n"
            "set_input_delay 1 -min -clock CK PORT\n"
        )
        cs = resolve(cmds, c)
        assert cs.ok and "PORT" in {d.net for d in cs.input_delays.values()}

        # Unconstrained: the port is assumed stable, no static windows.
        bare = compute_windows(c)
        rise, fall = bare.by_name("PORT")
        assert rise.is_empty and fall.is_empty

        # Constrained: both analyses see the same change windows, so the
        # enclosure contract holds by construction.
        windows = compute_windows(c, constraints=cs)
        rise, fall = windows.by_name("PORT")
        assert not rise.is_empty and not fall.is_empty
        result = TimingVerifier(c, constraints=cs).verify()
        assert check_encloses(result, windows).ok

    def test_output_delay_adds_virtual_check_in_both_analyses(self):
        c = self._port_circuit()
        cmds, _ = parse_sdc(
            'create_clock -period 50 -name CK "CK .P2-3"\n'
            "set_output_delay 5 -max -clock CK Q\n"
            "set_output_delay 1 -min -clock CK Q\n"
        )
        cs = resolve(cmds, c)
        assert cs.ok and len(cs.output_delays) == 1

        windows = compute_windows(c, constraints=cs)
        slack = compute_slack(c, windows, constraints=cs)
        (rec,) = [r for r in slack if r.kind == "output"]
        assert rec.component == "sdc@Q"
        # The register's output changes right at the capture edge: the
        # virtual boundary check must fail in both analyses.
        assert rec.slack_ps is not None and rec.slack_ps < 0
        result = TimingVerifier(c, constraints=cs).verify()
        assert any(v.component == "sdc@Q" for v in result.violations)
        assert check_encloses(result, windows, slack=slack).ok


# ---------------------------------------------------------------------------
# CLI surface: --sdc everywhere, exit codes, JSON purity, pragmas
# ---------------------------------------------------------------------------


class TestCli:
    def test_scald_tv_sdc_flips_multicycle_verdict(self, capsys):
        from repro.cli import main

        assert main([MULTICYCLE]) == 1
        assert main([MULTICYCLE, "--sdc", MULTICYCLE_SDC, "--crosscheck"]) == 0
        out = capsys.readouterr().out
        assert "statically-positive" in out

    def test_scald_tv_missing_sdc_is_usage_error(self):
        from repro.cli import main

        assert main([MULTICYCLE, "--sdc", "/nonexistent.sdc"]) == 2

    def test_scald_tv_sdc_error_findings_fail_the_run(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.sdc"
        bad.write_text("set_false_path -to NOSUCHPIN\n")
        assert main([SHIFTER, "--sdc", str(bad)]) == 1
        assert "sdc.unresolved-pin" in capsys.readouterr().out

    def test_scald_sta_json_purity(self, capsys):
        from repro.sta.cli import main

        assert main([SHIFTER, "--json", "--sdc", SHIFTER_SDC]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout is pure JSON
        assert doc["ok"] is True
        assert doc["constraints"]["clocks"] == ["MAIN CLK .P2-3"]
        assert all(rec["kind"] == "setup-hold" for rec in doc["slack"])

    def test_scald_sta_json_array_for_multiple_designs(self, capsys):
        from repro.sta.cli import main

        assert main([SHIFTER, RECOVERY, "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [d["circuit"] for d in docs] == ["SHIFTER", "RECOVERY"]

    def test_scald_sta_exit_1_on_negative_slack(self):
        from repro.sta.cli import main

        assert main([MULTICYCLE]) == 1
        assert main([MULTICYCLE, "--sdc", MULTICYCLE_SDC]) == 0

    def test_scald_lint_json_purity(self, capsys):
        from repro.lint.cli import main

        assert main([SHIFTER, "--json", "--sdc", SHIFTER_SDC]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["summary"]["errors"] == 0
        assert SHIFTER_SDC in doc["files"]

    def test_scald_lint_json_array_for_multiple_designs(self, capsys):
        from repro.lint.cli import main

        assert main([SHIFTER, RECOVERY, "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert len(docs) == 2

    def test_scald_lint_sdc_family(self, tmp_path, capsys):
        from repro.lint.cli import main

        bad = tmp_path / "bad.sdc"
        bad.write_text("set_false_path -to NOSUCHPIN\nset_dont_touch x\n")
        assert main([SHIFTER, "--sdc", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "sdc.unresolved-pin" in out
        assert "sdc.unknown-command" in out


class TestSuppressionPragmas:
    def test_dotted_rule_id_suppresses(self, tmp_path):
        from repro.lint import lint_path

        bad = tmp_path / "bad.sdc"
        bad.write_text(
            "# scald: disable=sdc.unresolved-pin\n"
            "set_false_path -to NOSUCHPIN\n"
        )
        result = lint_path(SHIFTER, sdc_path=str(bad))
        assert result.errors == []
        assert result.suppressed >= 1

    def test_family_wildcard_suppresses_late_registered_rules(self, tmp_path):
        from repro.lint import lint_path

        bad = tmp_path / "bad.sdc"
        bad.write_text(
            "# scald: disable=sdc.*\n"
            "set_dont_touch x\n"
        )
        result = lint_path(SHIFTER, sdc_path=str(bad))
        assert [d for d in result.diagnostics if d.rule.startswith("sdc.")] == []

    def test_unrelated_rules_not_swallowed(self, tmp_path):
        from repro.lint import lint_path

        bad = tmp_path / "bad.sdc"
        bad.write_text(
            "# scald: disable=sdc.unknown-command\n"
            "set_false_path -to NOSUCHPIN\n"
        )
        result = lint_path(SHIFTER, sdc_path=str(bad))
        assert any(d.rule == "sdc.unresolved-pin" for d in result.errors)
