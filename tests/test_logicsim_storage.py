"""Additional logic-simulator coverage: latches, muxes, traces, clocks."""

import pytest

from repro import Circuit
from repro.baselines import LV, LogicSimulator


def circuit():
    return Circuit("sim", period_ns=50.0, clock_unit_ns=6.25)


class TestSimLatch:
    def _latch(self):
        c = circuit()
        en = c.net("EN .P2-5")  # open 12.5..31.25 ns
        en.wire_delay_ps = (0, 0)
        c.latch("Q", enable=en, data="D", delay=(1.0, 2.0))
        return c

    def test_transparent_while_open(self):
        sim = LogicSimulator(self._latch())
        sim.drive("D", [1, 1])
        result = sim.run(cycles=2)
        assert result.final_values["Q"] is LV.ONE

    def test_holds_after_close(self):
        """Data toggles each cycle at t=0, while the latch is closed; the
        captured value from the open window persists."""
        sim = LogicSimulator(self._latch())
        sim.drive("D", [1, 0])
        result = sim.run(cycles=2, record_trace=True)
        # During cycle 2 the latch reopens at 62.5 and follows D=0.
        assert result.final_values["Q"] is LV.ZERO

    def test_trace_records_changes(self):
        sim = LogicSimulator(self._latch())
        sim.drive("D", [1])
        result = sim.run(cycles=1, record_trace=True)
        assert any(net == "Q" for net, _t, _v in result.trace)
        assert result.trace == sorted(result.trace, key=lambda e: e[1])


class TestSimMux:
    def test_mux_routes_by_select(self):
        c = circuit()
        c.mux("OUT", selects=["S"], inputs=["A", "B"], delay=(1.0, 2.0))
        sim = LogicSimulator(c)
        sim.drive("S", [0, 1])
        sim.drive("A", [1, 1])
        sim.drive("B", [0, 0])
        result = sim.run(cycles=2)
        assert result.final_values["OUT"] is LV.ZERO  # S=1 routes B

    def test_unknown_select_gives_x(self):
        c = circuit()
        c.mux("OUT", selects=["S"], inputs=["A", "B"], delay=(1.0, 2.0))
        sim = LogicSimulator(c)
        sim.drive("A", [1])
        sim.drive("B", [0])
        result = sim.run(cycles=1)  # S never driven: stays X
        assert result.final_values["OUT"] is LV.X


class TestSimSetReset:
    def test_reset_forces_zero(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D", set_="GND", reset="RST",
              delay=(1.0, 2.0))
        sim = LogicSimulator(c)
        sim.drive("D", [1, 1])
        sim.drive("RST", [0, 1])
        result = sim.run(cycles=2)
        assert result.final_values["Q"] is LV.ZERO

    def test_set_forces_one(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D", set_="ST", reset="GND",
              delay=(1.0, 2.0))
        sim = LogicSimulator(c)
        sim.drive("D", [0, 0])
        sim.drive("ST", [1, 1])
        result = sim.run(cycles=2)
        assert result.final_values["Q"] is LV.ONE

    def test_inactive_set_reset_clocks_normally(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D", set_="GND", reset="GND",
              delay=(1.0, 2.0))
        sim = LogicSimulator(c)
        sim.drive("D", [1, 1])
        result = sim.run(cycles=2)
        assert result.final_values["Q"] is LV.ONE


class TestSimClocks:
    def test_low_asserted_clock(self):
        c = circuit()
        c.gate("BUF", "OUT", ["CK .C2-3 L"], delay=(0.0, 0.0))
        sim = LogicSimulator(c)
        result = sim.run(cycles=1, record_trace=True)
        values = [v for net, _t, v in result.trace if net == "CK .C2-3 L"]
        # Starts high (low-asserted), dips low over units 2-3.
        assert LV.ZERO in values and LV.ONE in values

    def test_ambiguity_region_scheduled(self):
        """A gate with distinct min/max delays passes through its U/D
        transitional value between them."""
        c = circuit()
        c.gate("BUF", "OUT", ["CK .P2-3"], delay=(2.0, 5.0))
        sim = LogicSimulator(c)
        result = sim.run(cycles=1, record_trace=True)
        out_values = [v for net, _t, v in result.trace if net == "OUT"]
        assert LV.U in out_values  # rising ambiguity
        assert LV.D in out_values  # falling ambiguity

    def test_events_bounded_by_horizon(self):
        c = circuit()
        c.gate("NOT", "OUT", ["CK .P2-3"], delay=(1.0, 1.0))
        sim = LogicSimulator(c)
        one = sim.run(cycles=1).events
        four = sim.run(cycles=4).events
        assert 3 * one <= four <= 5 * one
