"""Tests for multi-file SCALD sources (the ``include`` statement)."""

import pytest

from repro import TimingVerifier
from repro.hdl.expander import MacroExpander, expand_file
from repro.hdl.parser import ScaldSyntaxError, parse_file
from repro.library import scald_library_path

LIB = '''
macro "PASS" (SIZE);
  param "A"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim BUF b (I="A"/P, OUT="Q"/P<0:SIZE-1>) delay=1.0:2.0 width=SIZE;
endmacro;
'''


@pytest.fixture
def project(tmp_path):
    (tmp_path / "lib.scald").write_text(LIB)
    (tmp_path / "top.scald").write_text(
        'design TOP;\n'
        'period 50 ns;\n'
        'clock_unit 6.25 ns;\n'
        'include "lib.scald";\n'
        'use "PASS" u (A="IN .S0-6"<0:7>, Q="OUT"<0:7>) SIZE=8;\n'
    )
    return tmp_path


class TestInclude:
    def test_macros_spliced(self, project):
        design = parse_file(str(project / "top.scald"))
        assert "PASS" in design.macros
        assert len(design.files_read) == 2

    def test_included_design_verifies(self, project):
        circuit, stats = expand_file(str(project / "top.scald"))
        assert len(circuit.components) == 1
        result = TimingVerifier(circuit).verify()
        assert result.ok

    def test_main_file_header_wins(self, project, tmp_path):
        (tmp_path / "lib2.scald").write_text("design LIB;\nperiod 99 ns;\n" + LIB)
        (tmp_path / "top2.scald").write_text(
            'design REAL;\nperiod 50 ns;\nclock_unit 6.25 ns;\n'
            'include "lib2.scald";\n'
        )
        design = parse_file(str(tmp_path / "top2.scald"))
        assert design.name == "REAL"
        assert design.period_ns == 50.0

    def test_missing_include_reported_with_location(self, tmp_path):
        (tmp_path / "t.scald").write_text(
            'design T;\ninclude "nonexistent.scald";\n'
        )
        with pytest.raises(ScaldSyntaxError, match="cannot include"):
            parse_file(str(tmp_path / "t.scald"))

    def test_circular_include_rejected(self, tmp_path):
        (tmp_path / "a.scald").write_text('include "b.scald";\n')
        (tmp_path / "b.scald").write_text('include "a.scald";\n')
        with pytest.raises(ScaldSyntaxError, match="circular"):
            parse_file(str(tmp_path / "a.scald"))

    def test_self_include_rejected(self, tmp_path):
        (tmp_path / "s.scald").write_text('include "s.scald";\n')
        with pytest.raises(ScaldSyntaxError, match="circular"):
            parse_file(str(tmp_path / "s.scald"))

    def test_duplicate_macro_across_files_rejected(self, project, tmp_path):
        (project / "top3.scald").write_text(
            'design T;\nperiod 50 ns;\n'
            'include "lib.scald";\n'
            + LIB  # defines PASS again
        )
        with pytest.raises(ScaldSyntaxError, match="duplicate"):
            parse_file(str(project / "top3.scald"))


class TestShippedLibrary:
    def test_library_file_exists_and_parses(self):
        path = scald_library_path()
        design = parse_file(path)
        assert "16W RAM 10145A" in design.macros
        assert "REG 100141" in design.macros

    def test_design_against_shipped_library(self, tmp_path):
        top = tmp_path / "design.scald"
        top.write_text(
            'design SHIPPED;\n'
            'period 50 ns;\n'
            'clock_unit 6.25 ns;\n'
            f'include "{scald_library_path()}";\n'
            'wire "CK .P2-3" 0.0:0.0;\n'
            'use "REG 100141" r (I="D .S0-6"<0:15>, CK="CK .P2-3", '
            'Q="Q"<0:15>) SIZE=16;\n'
        )
        circuit, _ = expand_file(str(top))
        result = TimingVerifier(circuit).verify()
        assert result.ok, [str(v) for v in result.violations]
