"""Differential proof of the optimized engine against the naive oracle.

The three engine optimisations — levelized scheduling, waveform interning,
memoized evaluation — may change how many evaluations the fixed point
takes, but never what it converges to.  These tests require ``==``-identical
snapshots, violations and cross-reference listings between the optimized
engine and the naive FIFO reference (all toggles off) on every workload,
including under case analysis.
"""

from __future__ import annotations

import pytest

from repro.core.config import VerifyConfig
from repro.core.engine import Engine
from repro.core.verifier import TimingVerifier
from repro.workloads.minicpu import build_minicpu
from repro.workloads.synth import SynthConfig, generate

OPTIMIZED = VerifyConfig()
NAIVE = OPTIMIZED.naive()

#: One configuration per optimisation, to localise any divergence.
SINGLE_TOGGLES = [
    pytest.param(
        VerifyConfig(
            levelized_scheduling=True,
            intern_waveforms=False,
            memoize_evaluation=False,
        ),
        id="levelized-only",
    ),
    pytest.param(
        VerifyConfig(
            levelized_scheduling=False,
            intern_waveforms=True,
            memoize_evaluation=False,
        ),
        id="intern-only",
    ),
    pytest.param(
        VerifyConfig(
            levelized_scheduling=False,
            intern_waveforms=False,
            memoize_evaluation=True,
        ),
        id="memo-only",
    ),
    pytest.param(OPTIMIZED, id="all-on"),
]


def assert_equivalent(circuit, config):
    """Optimized and naive runs must agree on everything observable."""
    reference = TimingVerifier(circuit, NAIVE).verify()
    candidate = TimingVerifier(circuit, config).verify()

    assert len(candidate.cases) == len(reference.cases)
    for got, want in zip(candidate.cases, reference.cases):
        assert got.assignments == want.assignments
        assert got.waveforms == want.waveforms
    assert [str(v) for v in candidate.violations] == [
        str(v) for v in reference.violations
    ]
    assert candidate.xref_assumed_stable == reference.xref_assumed_stable
    assert candidate.ok == reference.ok


@pytest.mark.parametrize(
    "chips,seed",
    [(120, 1980), (250, 7), (500, 42)],
)
@pytest.mark.parametrize("config", SINGLE_TOGGLES)
def test_synth_equivalence(chips, seed, config):
    circuit, _ = generate(
        SynthConfig(chips=chips, stage_chips=250, seed=seed)
    ).circuit()
    assert_equivalent(circuit, config)


@pytest.mark.parametrize("config", SINGLE_TOGGLES)
def test_minicpu_equivalence(config):
    assert_equivalent(build_minicpu(), config)


@pytest.mark.parametrize("config", SINGLE_TOGGLES)
def test_case_analysis_equivalence(config):
    """Incremental ``apply_case`` re-evaluation matches the naive engine."""
    circuit, _ = generate(SynthConfig(chips=200)).circuit()
    for k in range(4):
        circuit.add_case_by_name({"MUX CTL .S0-8": k % 2})
    assert_equivalent(circuit, config)


def test_scrambled_order_equivalence():
    """A hostile netlist order changes the work, never the fixed point."""
    circuit, _ = generate(SynthConfig(chips=250)).circuit()
    items = list(circuit.components.items())[::-1]
    circuit.components.clear()
    circuit.components.update(items)
    assert_equivalent(circuit, OPTIMIZED)


def test_optimized_engine_reports_cache_activity():
    """The counters threaded through EngineStats actually move."""
    circuit, _ = generate(SynthConfig(chips=250)).circuit()
    result = TimingVerifier(circuit, OPTIMIZED).verify()
    s = result.stats
    assert s.memo_hits > 0
    assert s.intern_hits > 0
    assert s.prepared_hits + s.prepared_misses > 0
    assert s.max_rank > 0
    assert s.evaluations_saved == s.memo_hits
    assert 0.0 < s.memo_hit_rate < 1.0
    assert 0.0 < s.intern_hit_rate < 1.0
    # The naive engine leaves every optimisation counter untouched.
    naive = TimingVerifier(circuit, NAIVE).verify()
    assert naive.stats.memo_hits == naive.stats.intern_hits == 0
    assert naive.stats.max_rank == 0


def test_levelized_heap_drains_in_rank_order():
    """The initial drain visits components in nondecreasing rank order."""
    circuit, _ = generate(SynthConfig(chips=120)).circuit()
    engine = Engine(circuit, OPTIMIZED)
    engine.initialize(circuit.cases[0] if circuit.cases else {})
    seen: list[int] = []
    n_initial = len(engine._heap)
    for _ in range(n_initial):
        comp = engine._pop()
        assert comp is not None
        seen.append(engine._ranks.get(comp.name, 0))
        engine._queued.discard(comp.name)
    # Popping never goes back down in rank within one wave.
    assert seen == sorted(seen)
