"""Incremental re-verification must be byte-identical to from-scratch.

The correctness gate for the whole incremental layer: after any typed
edit (or sequence of edits), ``Session.reverify()`` and a from-scratch
``TimingVerifier`` on the same edited circuit must produce identical
error listings, summary listings and cross-references
(:func:`repro.incremental.assert_incremental_equivalent`).  Shipped
designs cover each edit type deterministically; a hypothesis sweep drives
randomized edit sequences over the synthetic generator's size x seed
matrix.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Session
from repro.incremental import (
    AssertionEdit,
    ParamEdit,
    ReconnectEdit,
    WireDelayEdit,
    assert_incremental_equivalent,
    edit_from_doc,
    edit_to_doc,
)
from repro.netlist.circuit import NetlistError
from repro.workloads.synth import SynthConfig, generate

SHIFTER = "examples/designs/shifter.scald"
MULTICYCLE = "examples/designs/multicycle.scald"
RECOVERY = "examples/designs/recovery.scald"


def _session(path):
    session = Session.from_file(path)
    session.verify()
    return session


class TestEditTypes:
    def test_wire_delay_edit(self):
        session = _session(SHIFTER)
        session.edit(WireDelayEdit("AFTER 1", (0.0, 1.0)))
        inc = assert_incremental_equivalent(session)
        assert inc.incremental
        assert inc.stats.incremental_runs == 1
        assert inc.stats.reused_waveforms > 0

    def test_wire_delay_restore_default(self):
        session = _session(SHIFTER)
        session.edit(WireDelayEdit("AFTER 1", (0.0, 1.0)))
        session.reverify(prescreen=False)
        session.edit(WireDelayEdit("AFTER 1", None))
        inc = assert_incremental_equivalent(session)
        assert inc.incremental

    def test_param_edit_model_delay(self):
        session = _session(SHIFTER)
        session.edit(ParamEdit("s1/rot", {"delay": (2.0, 5.0)}))
        inc = assert_incremental_equivalent(session)
        assert inc.incremental

    def test_param_edit_checker(self):
        session = _session(SHIFTER)
        # Tighten the output register's setup far enough to fail: the
        # incremental run must report the identical violation listing.
        session.edit(ParamEdit("outreg/su", {"setup": 30.0}))
        inc = assert_incremental_equivalent(session)
        assert not inc.ok

    def test_param_edit_rejects_unknown(self):
        session = _session(SHIFTER)
        with pytest.raises(NetlistError):
            session.edit(ParamEdit("s1/rot", {"bogus": 1.0}))

    def test_param_edit_rejects_width(self):
        session = _session(SHIFTER)
        with pytest.raises(NetlistError):
            session.edit(ParamEdit("s1/rot", {"width": 8}))

    def test_reconnect_edit(self):
        session = _session(SHIFTER)
        # Bypass the second shift stage at the output register.
        session.edit(ReconnectEdit("outreg/r", "DATA", "AFTER 1"))
        inc = assert_incremental_equivalent(session)
        assert inc.incremental

    def test_reconnect_rejects_unknown_pin(self):
        session = _session(SHIFTER)
        with pytest.raises(NetlistError):
            session.edit(ReconnectEdit("outreg/r", "NOPIN", "AFTER 1"))

    def test_assertion_edit(self):
        session = _session(MULTICYCLE)
        session.edit(AssertionEdit("DIN .S0-6", ".S1-6"))
        inc = assert_incremental_equivalent(session)
        assert inc.incremental

    def test_edit_sequence_batches(self):
        session = _session(SHIFTER)
        session.edit(
            WireDelayEdit("HELD", (0.0, 0.5)),
            ParamEdit("s2/rot", {"delay": (2.0, 6.0)}),
            ParamEdit("inreg/su", {"hold": 1.0}),
        )
        inc = assert_incremental_equivalent(session)
        assert inc.incremental

    def test_recovery_design(self):
        session = _session(RECOVERY)
        session.edit(ParamEdit("hold", {"delay": (1.0, 4.0)}))
        assert_incremental_equivalent(session)


class TestReverifySemantics:
    def test_falls_back_to_full_run(self):
        session = Session.from_file(SHIFTER)
        inc = session.reverify()
        assert not inc.incremental  # no converged state yet
        assert inc.ok

    def test_noop_reverify_reuses_everything(self):
        session = _session(SHIFTER)
        inc = session.reverify(prescreen=False)
        assert inc.incremental
        assert inc.stats.dirty_primitives == 0
        assert inc.stats.reused_waveforms > 0
        assert_incremental_equivalent(session)

    def test_prescreen_attached(self):
        session = _session(SHIFTER)
        session.edit(WireDelayEdit("AFTER 1", (0.0, 1.0)))
        inc = session.reverify(prescreen=True)
        assert inc.prescreen is not None
        assert inc.prescreen.seconds >= 0.0
        # Static analysis is conservative: a clean prescreen verdict can
        # never contradict an engine violation in the other direction,
        # but either way the engine result is the authority.
        if inc.prescreen.ok:
            assert inc.ok

    def test_prescreen_indeterminate_is_not_clean(self):
        """An overflowed static window makes no slack claim; the prescreen
        must not launder "no evidence" into "statically clean" while the
        engine goes on to find real violations."""
        session = _session(SHIFTER)
        session.edit(WireDelayEdit("AFTER 1", (0.0, 25.0)))
        inc = session.reverify(prescreen=True)
        assert not inc.ok  # engine authority: the design is broken
        assert inc.prescreen is not None
        assert inc.prescreen.indeterminate >= 1
        assert not inc.prescreen.ok

    def test_dirty_cone_is_local(self):
        """A one-net edit dirties a strict subset of the primitives."""
        circuit, _ = generate(SynthConfig(chips=100)).circuit()
        session = Session(circuit)
        session.verify()
        total = sum(
            1 for c in circuit.iter_components() if not c.prim.is_checker
        )
        net = next(n for n in circuit.nets if n.startswith("S0 R "))
        session.edit(WireDelayEdit(net, (0.0, 0.4)))
        inc = assert_incremental_equivalent(session)
        assert 0 < inc.stats.dirty_primitives < total
        assert inc.stats.reused_waveforms > 0


class TestWireFormat:
    @pytest.mark.parametrize(
        "edit",
        [
            WireDelayEdit("A", (0.0, 1.5)),
            WireDelayEdit("A", None),
            ParamEdit("c", {"delay": (1.0, 2.0), "setup": 0.5}),
            ReconnectEdit("c", "DATA", "-B &H"),
            AssertionEdit("A", ".P2-3"),
            AssertionEdit("A", None),
        ],
    )
    def test_round_trip(self, edit):
        assert edit_from_doc(edit_to_doc(edit)) == edit

    def test_unknown_kind_rejected(self):
        with pytest.raises(NetlistError):
            edit_from_doc({"kind": "sorcery"})

    def test_unknown_key_rejected(self):
        # A misspelled field must not silently turn into a different edit
        # ("delay" dropped -> clear-wire-delay no-op reported as success).
        with pytest.raises(NetlistError, match="delay"):
            edit_from_doc(
                {"kind": "wire_delay", "net": "A", "delay": [0.0, 1.0]}
            )
        with pytest.raises(NetlistError, match="setup"):
            edit_from_doc({"kind": "param", "component": "c", "setup": 1.0})


# ----------------------------------------------------------------------
# randomized edit sequences over the synth matrix
# ----------------------------------------------------------------------

_SYNTH_CACHE = {}


def _synth_session(chips, seed):
    """A converged session on a cached synthetic circuit.

    Sessions edit circuits in place, so every draw gets a fresh expansion;
    only the (deterministic) generated source is cached.
    """
    key = (chips, seed)
    if key not in _SYNTH_CACHE:
        _SYNTH_CACHE[key] = generate(SynthConfig(chips=chips, seed=seed))
    circuit, _ = _SYNTH_CACHE[key].circuit()
    session = Session(circuit)
    session.verify()
    return session


@st.composite
def _edits(draw, session):
    """1-3 random timing edits valid for ``session``'s circuit."""
    circuit = session.circuit
    nets = sorted(circuit.nets)
    delayed = sorted(
        name
        for name, comp in circuit.components.items()
        if isinstance(comp.params.get("delay"), tuple)
    )
    checkers = sorted(
        name
        for name, comp in circuit.components.items()
        if comp.prim.is_checker and "setup" in comp.params
    )
    out = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(["wire", "wire_clear", "delay", "setup"]))
        if kind == "wire":
            lo = draw(st.integers(min_value=0, max_value=4)) / 4
            hi = lo + draw(st.integers(min_value=0, max_value=4)) / 4
            out.append(WireDelayEdit(draw(st.sampled_from(nets)), (lo, hi)))
        elif kind == "wire_clear":
            out.append(WireDelayEdit(draw(st.sampled_from(nets)), None))
        elif kind == "delay" and delayed:
            comp = draw(st.sampled_from(delayed))
            lo_ps, hi_ps = circuit.components[comp].params["delay"]
            stretch = draw(st.integers(min_value=2, max_value=6)) / 4
            new_hi = max(lo_ps, int(hi_ps * stretch))
            out.append(
                ParamEdit(comp, {"delay": (lo_ps / 1000, new_hi / 1000)})
            )
        elif checkers:
            comp = draw(st.sampled_from(checkers))
            out.append(
                ParamEdit(
                    comp,
                    {"setup": draw(st.integers(min_value=0, max_value=12)) / 4},
                )
            )
    return out


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
@pytest.mark.parametrize("chips,seed", [(30, 1), (30, 7), (60, 2)])
def test_randomized_edit_sequences(chips, seed, data):
    """Random edit batches: reverify == from-scratch, always."""
    session = _synth_session(chips, seed)
    # Two reverification rounds per example: dirt must not leak between
    # rounds, and the second round starts from an incremental converged
    # state rather than a full run's.
    for _ in range(2):
        session.edit(*data.draw(_edits(session)))
        assert_incremental_equivalent(session)
