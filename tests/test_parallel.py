"""Process-parallel verification must match the serial verifier exactly.

The contract of ``repro.parallel`` is determinism: for any circuit and any
jobs count, the parallel run's violations, waveforms, listings and exit
status are byte-identical to the serial run's.  These tests check that
over a synth size x seed matrix, over a failing multi-case design, and
over modular sections, plus the merge plumbing (block partitioning,
EngineStats.merged, CPU phase times) and result-object pickling.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.engine import EngineStats
from repro.core.verifier import TimingVerifier, VerificationResult
from repro.modular import verify_sections
from repro.netlist.circuit import Circuit
from repro.parallel import case_blocks, verify_parallel
from repro.workloads.figures import (
    fig_2_5_register_file,
    fig_2_6_case_analysis,
)
from repro.workloads.synth import SynthConfig, generate


def synth_with_cases(chips: int, seed: int, n_cases: int = 5) -> Circuit:
    design = generate(SynthConfig(chips=chips, stage_chips=max(30, chips // 2),
                                  seed=seed))
    circuit, _ = design.circuit()
    for k in range(n_cases):
        circuit.add_case_by_name({"MUX CTL .S0-8": k % 2})
    return circuit


def failing_multicase() -> Circuit:
    """A design with real violations spread over several cases."""
    c = fig_2_5_register_file()
    assert TimingVerifier(c).verify().violations  # stays a failing fixture
    for k in range(4):
        c.add_case_by_name({"SPARE CTL": k % 2})
    return c


def assert_equivalent(serial: VerificationResult, par: VerificationResult):
    assert [v.message() for v in serial.violations] == [
        v.message() for v in par.violations
    ]
    assert serial.error_listing() == par.error_listing()
    assert serial.ok == par.ok
    assert serial.xref_assumed_stable == par.xref_assumed_stable
    assert len(serial.cases) == len(par.cases)
    for cs, cp in zip(serial.cases, par.cases):
        assert cs.index == cp.index
        assert cs.assignments == cp.assignments
        assert cs.waveforms == cp.waveforms
    for case in range(len(serial.cases)):
        assert serial.summary_listing(case=case) == par.summary_listing(
            case=case
        )


class TestCaseBlocks:
    def test_partition_covers_range_contiguously(self):
        for n in (1, 2, 5, 7, 16):
            for jobs in (1, 2, 3, 4, 8, 32):
                blocks = case_blocks(n, jobs)
                assert len(blocks) == min(jobs, n)
                assert blocks[0][0] == 0 and blocks[-1][1] == n
                for (a0, a1), (b0, b1) in zip(blocks, blocks[1:]):
                    assert a1 == b0
                    assert a1 > a0 and b1 > b0

    def test_balanced_within_one(self):
        sizes = [b - a for a, b in case_blocks(10, 3)]
        assert max(sizes) - min(sizes) <= 1


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("chips", [60, 200])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_synth_matrix(self, chips, seed):
        circuit = synth_with_cases(chips, seed)
        serial = TimingVerifier(circuit).verify()
        par = verify_parallel(circuit, jobs=2)
        assert_equivalent(serial, par)
        assert serial.ok  # the generator's designs verify clean

    def test_failing_design_violations_in_case_order(self):
        circuit = failing_multicase()
        serial = TimingVerifier(circuit).verify()
        par = verify_parallel(circuit, jobs=3)
        assert serial.violations  # exercised the merge with real content
        assert_equivalent(serial, par)
        assert [v.case_index for v in par.violations] == sorted(
            v.case_index for v in par.violations
        )

    def test_more_jobs_than_cases(self):
        circuit = synth_with_cases(60, 3, n_cases=2)
        serial = TimingVerifier(circuit).verify()
        par = verify_parallel(circuit, jobs=8)
        assert_equivalent(serial, par)

    def test_single_case_falls_back_to_serial(self):
        circuit, _ = generate(SynthConfig(chips=60, stage_chips=30)).circuit()
        par = verify_parallel(circuit, jobs=4)
        serial = TimingVerifier(circuit).verify()
        assert_equivalent(serial, par)
        assert par.phases_cpu is None  # the serial verifier ran

    def test_parallel_records_cpu_phase_times(self):
        circuit = synth_with_cases(60, 1, n_cases=4)
        par = verify_parallel(circuit, jobs=2)
        assert par.phases_cpu is not None
        assert par.phases_cpu.total >= 0.0
        assert par.stats.events_by_case and len(par.stats.events_by_case) == 4


class TestStatsMerge:
    def test_counters_summed_and_cases_concatenated(self):
        a = EngineStats(events=3, evaluations=5, events_by_case=[3],
                        intern_hits=1, memo_hits=2, prepared_misses=4,
                        levelize_seconds=0.5, max_rank=7)
        b = EngineStats(events=2, evaluations=1, events_by_case=[1, 1],
                        intern_misses=6, memo_misses=3, prepared_hits=2,
                        levelize_seconds=0.2, max_rank=9)
        m = EngineStats.merged([a, b])
        assert m.events == 5 and m.evaluations == 6
        assert m.events_by_case == [3, 1, 1]
        assert (m.intern_hits, m.intern_misses) == (1, 6)
        assert (m.memo_hits, m.memo_misses) == (2, 3)
        assert (m.prepared_hits, m.prepared_misses) == (2, 4)
        assert m.levelize_seconds == 0.5  # wall: max-reduced
        assert m.max_rank == 9

    def test_merge_of_nothing_is_zero(self):
        m = EngineStats.merged([])
        assert m.events == 0 and m.events_by_case == []


class TestModularParallel:
    def sections(self):
        return {"rf": fig_2_5_register_file(), "cases": fig_2_6_case_analysis()}

    def test_sections_match_serial(self):
        secs = self.sections()
        serial = verify_sections(secs)
        par = verify_sections(secs, jobs=2)
        assert list(serial.sections) == list(par.sections)  # original order
        for name in serial.sections:
            assert (
                serial.sections[name].error_listing()
                == par.sections[name].error_listing()
            )
        assert serial.report() == par.report()
        assert serial.ok == par.ok

    def test_jobs_one_is_the_serial_path(self):
        secs = self.sections()
        assert verify_sections(secs, jobs=1).report() == \
            verify_sections(secs).report()


class TestResultPickling:
    """The tentpole's enabling layer: results must survive a process hop."""

    def test_verification_result_round_trip(self):
        result = TimingVerifier(fig_2_5_register_file()).verify()
        restored = pickle.loads(pickle.dumps(result))
        assert restored.error_listing() == result.error_listing()
        assert restored.summary_listing() == result.summary_listing()
        assert restored.cases[0].waveforms == result.cases[0].waveforms

    def test_circuit_round_trip_preserves_alias_topology(self):
        circuit = fig_2_6_case_analysis()
        restored = pickle.loads(pickle.dumps(circuit))
        # Same representative structure: verification agrees exactly.
        a = TimingVerifier(circuit).verify()
        b = TimingVerifier(restored).verify()
        assert a.error_listing() == b.error_listing()
        assert len(restored.representatives()) == len(circuit.representatives())
