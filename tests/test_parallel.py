"""Process-parallel verification must match the serial verifier exactly.

The contract of ``repro.parallel`` is determinism: for any circuit and any
jobs count, the parallel run's violations, waveforms, listings and exit
status are byte-identical to the serial run's.  These tests check that
over a synth size x seed matrix, over a failing multi-case design, and
over modular sections, plus the merge plumbing (block partitioning,
EngineStats.merged, CPU phase times) and result-object pickling.
"""

from __future__ import annotations

import os
import pickle
import signal
from pathlib import Path

import pytest

from repro.constraints import load_constraints
from repro.core.engine import EngineStats
from repro.core.verifier import TimingVerifier, VerificationResult
from repro.hdl.expander import MacroExpander
from repro.incremental import WireDelayEdit
from repro.modular import verify_sections
from repro.netlist.circuit import Circuit
from repro.parallel import WorkerCrash, case_blocks, verify_parallel
from repro.session import Session
from repro.workloads.figures import (
    fig_2_5_register_file,
    fig_2_6_case_analysis,
)
from repro.workloads.synth import SynthConfig, generate

DESIGNS = Path(__file__).resolve().parent.parent / "examples" / "designs"


def synth_with_cases(chips: int, seed: int, n_cases: int = 5) -> Circuit:
    design = generate(SynthConfig(chips=chips, stage_chips=max(30, chips // 2),
                                  seed=seed))
    circuit, _ = design.circuit()
    for k in range(n_cases):
        circuit.add_case_by_name({"MUX CTL .S0-8": k % 2})
    return circuit


def failing_multicase() -> Circuit:
    """A design with real violations spread over several cases."""
    c = fig_2_5_register_file()
    assert TimingVerifier(c).verify().violations  # stays a failing fixture
    for k in range(4):
        c.add_case_by_name({"SPARE CTL": k % 2})
    return c


def assert_equivalent(serial: VerificationResult, par: VerificationResult):
    assert [v.message() for v in serial.violations] == [
        v.message() for v in par.violations
    ]
    assert serial.error_listing() == par.error_listing()
    assert serial.ok == par.ok
    assert serial.xref_assumed_stable == par.xref_assumed_stable
    assert len(serial.cases) == len(par.cases)
    for cs, cp in zip(serial.cases, par.cases):
        assert cs.index == cp.index
        assert cs.assignments == cp.assignments
        assert cs.waveforms == cp.waveforms
    for case in range(len(serial.cases)):
        assert serial.summary_listing(case=case) == par.summary_listing(
            case=case
        )


class TestCaseBlocks:
    def test_partition_covers_range_contiguously(self):
        for n in (1, 2, 5, 7, 16):
            for jobs in (1, 2, 3, 4, 8, 32):
                blocks = case_blocks(n, jobs)
                assert len(blocks) == min(jobs, n)
                assert blocks[0][0] == 0 and blocks[-1][1] == n
                for (a0, a1), (b0, b1) in zip(blocks, blocks[1:]):
                    assert a1 == b0
                    assert a1 > a0 and b1 > b0

    def test_balanced_within_one(self):
        sizes = [b - a for a, b in case_blocks(10, 3)]
        assert max(sizes) - min(sizes) <= 1


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("chips", [60, 200])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_synth_matrix(self, chips, seed):
        circuit = synth_with_cases(chips, seed)
        serial = TimingVerifier(circuit).verify()
        par = verify_parallel(circuit, jobs=2)
        assert_equivalent(serial, par)
        assert serial.ok  # the generator's designs verify clean

    def test_failing_design_violations_in_case_order(self):
        circuit = failing_multicase()
        serial = TimingVerifier(circuit).verify()
        par = verify_parallel(circuit, jobs=3)
        assert serial.violations  # exercised the merge with real content
        assert_equivalent(serial, par)
        assert [v.case_index for v in par.violations] == sorted(
            v.case_index for v in par.violations
        )

    def test_more_jobs_than_cases(self):
        circuit = synth_with_cases(60, 3, n_cases=2)
        serial = TimingVerifier(circuit).verify()
        par = verify_parallel(circuit, jobs=8)
        assert_equivalent(serial, par)

    def test_single_case_partitions_the_circuit(self):
        circuit, _ = generate(SynthConfig(chips=60, stage_chips=30)).circuit()
        par = verify_parallel(circuit, jobs=4)
        serial = TimingVerifier(circuit).verify()
        assert_equivalent(serial, par)
        # With one case there is no case axis: the circuit itself is
        # split along rank-group boundaries and converged by boundary
        # exchange — byte-identical via fixed-point uniqueness.
        assert par.pool is not None and par.pool.partitions >= 2
        assert par.pool.boundary_rounds >= 1

    def test_single_case_too_small_to_partition_runs_serial(self):
        circuit = fig_2_5_register_file()
        par = verify_parallel(circuit, jobs=4)
        serial = TimingVerifier(circuit).verify()
        assert_equivalent(serial, par)
        assert par.pool is None  # the serial verifier ran

    def test_parallel_records_cpu_phase_times(self):
        circuit = synth_with_cases(60, 1, n_cases=4)
        par = verify_parallel(circuit, jobs=2)
        assert par.phases_cpu is not None
        assert par.phases_cpu.total >= 0.0
        assert par.stats.events_by_case and len(par.stats.events_by_case) == 4


class TestWarmPool:
    """One Session, one pool: forked once, byte-identical across reuse."""

    @pytest.mark.parametrize("chips", [60, 200])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_two_runs_and_an_edit_on_one_pool(self, chips, seed):
        """The ISSUE's warm-reuse matrix: verify, verify again, then
        edit→reverify — all on the same workers, all equal to serial."""
        edit = WireDelayEdit("MUX CTL .S0-8", (0.0, 2.0))
        oracle_sess = Session(synth_with_cases(chips, seed))
        serial = oracle_sess.verify()
        serial_edited = oracle_sess.edit(edit).reverify().result

        sess = Session(synth_with_cases(chips, seed), jobs=2)
        try:
            r1 = sess.verify()
            r2 = sess.verify()
            assert_equivalent(serial, r1)
            assert_equivalent(serial, r2)
            assert r2.pool.pool_starts == 1  # same workers, not a refork
            assert r2.pool.runs == 2
            assert r2.pool.warm_runs >= 1  # run 2 restarted incrementally

            inc = sess.edit(edit).reverify()
            assert inc.incremental
            assert inc.result.pool.edits_shipped == 1
            assert inc.result.pool.pool_starts == 1
            assert_equivalent(serial_edited, inc.result)
        finally:
            sess.close()

    def test_digest_transfer_dedups_waveforms(self):
        sess = Session(synth_with_cases(60, 1), jobs=2)
        try:
            r1 = sess.verify()
            for case in r1.cases:
                case.waveforms.items()  # force every snapshot fetch
            r2 = sess.verify()
            for case in r2.cases:
                case.waveforms.items()
            pool = sess._pool.stats
            # Run 2 converged to the same values, so virtually everything
            # crosses as a bare integer reference the second time.
            assert pool.waveform_refs > pool.waveforms_shipped
            assert pool.snapshots_fetched == 10
        finally:
            sess.close()


class TestConstrainedParallel:
    """SDC constraints must survive both parallel axes (regression: the
    old section pool silently verified *unconstrained* under jobs > 1)."""

    def _multicycle(self, n_cases: int = 4):
        circuit = MacroExpander.from_file(
            str(DESIGNS / "multicycle.scald")
        ).expand()
        constraints = load_constraints(
            str(DESIGNS / "multicycle.sdc"), circuit
        )
        for k in range(n_cases):
            circuit.add_case_by_name({"DIN .S0-6": k % 2})
        return circuit, constraints

    def test_constrained_case_run_matches_serial(self):
        circuit, constraints = self._multicycle()
        serial = TimingVerifier(circuit, constraints=constraints).verify()
        c2, cons2 = self._multicycle()
        par = verify_parallel(c2, jobs=2, constraints=cons2)
        assert_equivalent(serial, par)
        # The regression has teeth: without the constraints the verdict
        # flips, so a pool that dropped them could not pass this test.
        c3, _ = self._multicycle()
        unconstrained = TimingVerifier(c3).verify()
        assert serial.ok and not unconstrained.ok

    def test_constrained_sections_match_serial(self):
        circuit, constraints = self._multicycle(n_cases=0)
        sections = {"mc": circuit, "rf": fig_2_5_register_file()}
        constraint_map = {"mc": constraints}
        serial = verify_sections(sections, constraints=constraint_map)
        par = verify_sections(sections, jobs=2, constraints=constraint_map)
        assert serial.report() == par.report()
        for name in sections:
            assert (
                serial.sections[name].error_listing()
                == par.sections[name].error_listing()
            )
        # Teeth: the unconstrained run reports violations in "mc".
        bare = verify_sections(sections, jobs=2)
        assert not bare.sections["mc"].ok and serial.sections["mc"].ok


class _ExitOnUnpickle:
    """Pickles fine in the parent; kills the worker that unpickles it."""

    def __reduce__(self):
        return (os._exit, (13,))


class TestWorkerCrash:
    def test_pool_worker_death_reports_the_block(self):
        sess = Session(synth_with_cases(60, 1), jobs=2)
        try:
            first = sess.verify()
            for case in first.cases:
                case.waveforms.items()  # drain before the murder below
            os.kill(sess._pool._procs[1].pid, signal.SIGKILL)
            with pytest.raises(WorkerCrash) as excinfo:
                sess.verify()
            assert "worker died" in str(excinfo.value)
            # The next run transparently reforks the pool.
            recovered = sess.verify()
            assert recovered.ok
            assert recovered.pool.pool_starts == 2
        finally:
            sess.close()

    def test_section_worker_death_names_the_section(self):
        sections = {
            "boom": fig_2_6_case_analysis(),
            "ok": fig_2_5_register_file(),
        }
        with pytest.raises(WorkerCrash) as excinfo:
            verify_sections(
                sections, jobs=2, constraints={"boom": _ExitOnUnpickle()}
            )
        assert "section 'boom'" in str(excinfo.value)


class TestStatsMerge:
    def test_counters_summed_and_cases_concatenated(self):
        a = EngineStats(events=3, evaluations=5, events_by_case=[3],
                        intern_hits=1, memo_hits=2, prepared_misses=4,
                        levelize_seconds=0.5, max_rank=7)
        b = EngineStats(events=2, evaluations=1, events_by_case=[1, 1],
                        intern_misses=6, memo_misses=3, prepared_hits=2,
                        levelize_seconds=0.2, max_rank=9)
        m = EngineStats.merged([a, b])
        assert m.events == 5 and m.evaluations == 6
        assert m.events_by_case == [3, 1, 1]
        assert (m.intern_hits, m.intern_misses) == (1, 6)
        assert (m.memo_hits, m.memo_misses) == (2, 3)
        assert (m.prepared_hits, m.prepared_misses) == (2, 4)
        assert m.levelize_seconds == 0.5  # wall: max-reduced
        assert m.max_rank == 9

    def test_merge_of_nothing_is_zero(self):
        m = EngineStats.merged([])
        assert m.events == 0 and m.events_by_case == []


class TestModularParallel:
    def sections(self):
        return {"rf": fig_2_5_register_file(), "cases": fig_2_6_case_analysis()}

    def test_sections_match_serial(self):
        secs = self.sections()
        serial = verify_sections(secs)
        par = verify_sections(secs, jobs=2)
        assert list(serial.sections) == list(par.sections)  # original order
        for name in serial.sections:
            assert (
                serial.sections[name].error_listing()
                == par.sections[name].error_listing()
            )
        assert serial.report() == par.report()
        assert serial.ok == par.ok

    def test_jobs_one_is_the_serial_path(self):
        secs = self.sections()
        assert verify_sections(secs, jobs=1).report() == \
            verify_sections(secs).report()


class TestResultPickling:
    """The tentpole's enabling layer: results must survive a process hop."""

    def test_verification_result_round_trip(self):
        result = TimingVerifier(fig_2_5_register_file()).verify()
        restored = pickle.loads(pickle.dumps(result))
        assert restored.error_listing() == result.error_listing()
        assert restored.summary_listing() == result.summary_listing()
        assert restored.cases[0].waveforms == result.cases[0].waveforms

    def test_circuit_round_trip_preserves_alias_topology(self):
        circuit = fig_2_6_case_analysis()
        restored = pickle.loads(pickle.dumps(circuit))
        # Same representative structure: verification agrees exactly.
        a = TimingVerifier(circuit).verify()
        b = TimingVerifier(restored).verify()
        assert a.error_listing() == b.error_listing()
        assert len(restored.representatives()) == len(circuit.representatives())
