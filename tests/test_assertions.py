"""Tests for the signal-name assertion grammar (section 2.5.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.timeline import Timebase
from repro.core.values import CHANGE, ONE, STABLE, ZERO
from repro.hdl.assertions import (
    AssertionKind,
    AssertionSyntaxError,
    parse_assertion_spec,
    parse_signal_name,
    split_signal_name,
)

TB = Timebase.from_ns(50.0, 6.25)  # the Chapter III timebase


class TestSplit:
    def test_no_assertion(self):
        assert split_signal_name("PLAIN NAME") == ("PLAIN NAME", None, None)

    def test_clock(self):
        assert split_signal_name("XYZ .C 4-6 L") == ("XYZ", "C", "4-6 L")

    def test_precision_clock_tight(self):
        assert split_signal_name("CLK A .P2-3") == ("CLK A", "P", "2-3")

    def test_stable(self):
        assert split_signal_name("W DATA .S0-6") == ("W DATA", "S", "0-6")

    def test_multiword_base(self):
        base, kind, spec = split_signal_name("READ ADR .S4-9")
        assert base == "READ ADR"
        assert kind == "S"

    def test_dot_without_space_not_an_assertion(self):
        assert split_signal_name("A.B") == ("A.B", None, None)


class TestParseSpec:
    def test_paper_example_low_clock(self):
        """'XYZ .C 4-6 L' goes from high to low at 4 and low to high at 6."""
        a = parse_assertion_spec("C", "4-6 L")
        assert a.kind is AssertionKind.CLOCK
        assert a.low is True
        assert len(a.ranges) == 1
        assert (a.ranges[0].start, a.ranges[0].end) == (4.0, 6.0)

    def test_multiple_ranges(self):
        a = parse_assertion_spec("C", "2-3,5-6")
        assert len(a.ranges) == 2

    def test_single_time_means_one_unit(self):
        """'XYZ .C2,5' is equivalent to .C2-3,5-6 (one clock unit each)."""
        a = parse_assertion_spec("C", "2,5")
        wf_pair = a.waveform(TB)
        wf_range = parse_assertion_spec("C", "2-3,5-6").waveform(TB)
        assert wf_pair == wf_range

    def test_plus_width_in_ns(self):
        """'XYZ .P2+10.0' goes high at unit 2 and stays high 10.0 ns —
        a width that does not scale with the cycle time."""
        a = parse_assertion_spec("P", "2+10.0")
        wf = a.waveform(TB)
        assert wf.value_at(TB.units_to_ps(2)) is ONE
        assert wf.value_at(TB.units_to_ps(2) + 9_999) is ONE
        assert wf.value_at(TB.units_to_ps(2) + 10_001) is ZERO

    def test_explicit_skew(self):
        a = parse_assertion_spec("P", "2-3 (-0.5,0.5)")
        assert a.skew_ns == (-0.5, 0.5)
        wf = a.waveform(TB, default_skew_ns=(-9.0, 9.0))
        assert wf.skew == (-500, 500)  # explicit skew overrides the default

    def test_default_skew_applies(self):
        a = parse_assertion_spec("P", "2-3")
        wf = a.waveform(TB, default_skew_ns=(-1.0, 1.0))
        assert wf.skew == (-1_000, 1_000)

    def test_fractional_times(self):
        a = parse_assertion_spec("S", "2.5-2")
        assert a.ranges[0].start == 2.5

    def test_malformed_rejected(self):
        with pytest.raises(AssertionSyntaxError):
            parse_assertion_spec("C", "4--6")
        with pytest.raises(AssertionSyntaxError):
            parse_assertion_spec("C", "")


class TestWaveforms:
    def test_clock_high_during_range(self):
        wf = parse_assertion_spec("P", "2-3").waveform(TB)
        assert wf.value_at(TB.units_to_ps(2)) is ONE
        assert wf.value_at(TB.units_to_ps(2.5)) is ONE
        assert wf.value_at(TB.units_to_ps(3)) is ZERO
        assert wf.value_at(0) is ZERO

    def test_low_clock_inverted(self):
        wf = parse_assertion_spec("C", "4-6 L").waveform(TB)
        assert wf.value_at(TB.units_to_ps(5)) is ZERO
        assert wf.value_at(TB.units_to_ps(2)) is ONE

    def test_stable_assertion_stable_then_changing(self):
        """'W DATA .S0-6': stable 0 to 6 and may be changing 6 to 8."""
        wf = parse_assertion_spec("S", "0-6").waveform(TB)
        assert wf.value_at(TB.units_to_ps(3)) is STABLE
        assert wf.value_at(TB.units_to_ps(7)) is CHANGE
        assert wf.skew == (0, 0)

    def test_wrapping_stable_assertion(self):
        """'READ ADR .S4-9': stable 4..9 means changing 1..4 (section 3.2,
        'the assertion specification is taken to be modulo the cycle')."""
        wf = parse_assertion_spec("S", "4-9").waveform(TB)
        assert wf.value_at(TB.units_to_ps(5)) is STABLE
        assert wf.value_at(TB.units_to_ps(0.5)) is STABLE
        assert wf.value_at(TB.units_to_ps(2)) is CHANGE

    def test_scales_with_clock_rate(self):
        """Clock units scale with the period (section 2.3)."""
        slow = Timebase.from_ns(100.0, 12.5)
        wf = parse_assertion_spec("P", "2-3").waveform(slow)
        assert wf.value_at(slow.units_to_ps(2)) is ONE
        assert wf.duration_of(ONE) == 12_500


class TestParseSignalName:
    def test_full_name(self):
        base, assertion = parse_signal_name("MAIN CLK .P2-3,6-7 L")
        assert base == "MAIN CLK"
        assert assertion is not None
        assert assertion.low
        assert len(assertion.ranges) == 2

    def test_plain_name(self):
        base, assertion = parse_signal_name("COUNTER OUT")
        assert base == "COUNTER OUT"
        assert assertion is None

    def test_assertion_text_preserved(self):
        _, assertion = parse_signal_name("X .S0-6")
        assert assertion.text == ".S0-6"

    @given(st.sampled_from(["P", "C", "S"]), st.integers(0, 7), st.integers(1, 8))
    def test_round_trip_ranges(self, kind, start, width):
        end = start + width
        _, a = parse_signal_name(f"SIG .{kind}{start}-{end}")
        assert a.kind.value == kind
        assert a.ranges[0].start == start
        assert a.ranges[0].end == end
