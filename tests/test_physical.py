"""Tests for the physical-design interconnect substrate (section 2.5.3)."""

import pytest

from repro import Circuit, TimingVerifier, VerifyConfig
from repro.physical import (
    ECL10K,
    Technology,
    WireRun,
    analyze_run,
    apply_physical_design,
    edge_sensitive_nets,
)


def circuit():
    c = Circuit("phys", period_ns=50.0, clock_unit_ns=6.25)
    c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
    c.setup_hold("D .S0-6", "CK .P2-3", setup=2.5, hold=1.5)
    return c


class TestAnalyzeRun:
    def test_delay_grows_with_length(self):
        short = analyze_run(WireRun("A", length_cm=5.0))
        long = analyze_run(WireRun("A", length_cm=20.0))
        assert long.delay_ps[1] > short.delay_ps[1]

    def test_loading_slows_the_line(self):
        light = analyze_run(WireRun("A", length_cm=10.0, loads=1))
        heavy = analyze_run(WireRun("A", length_cm=10.0, loads=8))
        assert heavy.delay_ps[0] > light.delay_ps[0]

    def test_spread_gives_a_range(self):
        a = analyze_run(WireRun("A", length_cm=10.0))
        assert a.delay_ps[0] < a.delay_ps[1]

    def test_matched_termination_never_reflects(self):
        a = analyze_run(WireRun("A", length_cm=100.0, termination_ohms=None))
        assert not a.reflection_risk
        assert a.reflection_coefficient == 0.0

    def test_short_run_tolerates_mismatch(self):
        """'For short interconnections ... length, capacitance and
        inductance' — no transmission-line analysis below a quarter edge."""
        a = analyze_run(WireRun("A", length_cm=2.0, termination_ohms=1_000.0))
        assert not a.reflection_risk

    def test_long_mismatched_run_flagged(self):
        """The section 1.3.2 hazard: a long, badly terminated run can
        double-clock a register."""
        a = analyze_run(WireRun("A", length_cm=15.0, termination_ohms=1_000.0))
        assert a.reflection_risk
        assert "quarter" in a.reason

    def test_reflection_coefficient_sign(self):
        open_ish = analyze_run(WireRun("A", 15.0, termination_ohms=500.0))
        short_ish = analyze_run(WireRun("A", 15.0, termination_ohms=5.0))
        assert open_ish.reflection_coefficient > 0
        assert short_ish.reflection_coefficient < 0

    def test_technology_knobs(self):
        slow = Technology(unloaded_delay_ns_per_cm=0.2)
        a_fast = analyze_run(WireRun("A", 10.0), ECL10K)
        a_slow = analyze_run(WireRun("A", 10.0), slow)
        assert a_slow.delay_ps[1] > a_fast.delay_ps[1]

    def test_invalid_runs_rejected(self):
        with pytest.raises(ValueError):
            WireRun("A", length_cm=-1.0)
        with pytest.raises(ValueError):
            WireRun("A", length_cm=1.0, loads=0)


class TestEdgeSensitive:
    def test_clock_pins_are_sensitive(self):
        c = circuit()
        sensitive = edge_sensitive_nets(c)
        assert "CK .P2-3" in sensitive
        assert "D .S0-6" not in sensitive

    def test_latch_enables_are_sensitive(self):
        c = Circuit("l", period_ns=50.0, clock_unit_ns=6.25)
        c.latch("Q", enable="EN .P2-5", data="D .S0-8")
        assert "EN .P2-5" in edge_sensitive_nets(c)


class TestApplyPhysicalDesign:
    def test_calculated_delays_replace_defaults(self):
        """Section 2.5.3: calculated interconnection delays are used by the
        Timing Verifier in place of the default."""
        c = circuit()
        report = apply_physical_design(c, [WireRun("D .S0-6", length_cm=10.0)])
        assert "D .S0-6" in report.applied
        assert c.nets["D .S0-6"].wire_delay_ps == report.analyses["D .S0-6"].delay_ps
        result = TimingVerifier(c, VerifyConfig()).verify()
        assert result.ok

    def test_reflection_on_clock_is_surfaced(self):
        c = circuit()
        report = apply_physical_design(
            c, [WireRun("CK .P2-3", length_cm=15.0, termination_ohms=1_000.0)]
        )
        assert not report.ok
        assert report.edge_sensitive_reflections
        assert "REFLECTIONS ON EDGE-SENSITIVE" in report.listing()

    def test_reflection_on_data_is_noted_but_not_fatal(self):
        c = circuit()
        report = apply_physical_design(
            c, [WireRun("D .S0-6", length_cm=15.0, termination_ohms=1_000.0)]
        )
        assert report.ok  # data inputs are level-sensitive
        assert report.analyses["D .S0-6"].reflection_risk

    def test_unknown_nets_reported(self):
        c = circuit()
        report = apply_physical_design(c, [WireRun("NOPE", length_cm=3.0)])
        assert "NOPE" in report.unknown_nets

    def test_long_calculated_wire_creates_real_violation(self):
        """A genuinely slow calculated run turns the default-rule-clean
        circuit into a failing one — physical design feeds verification."""
        c = circuit()
        apply_physical_design(c, [WireRun("D .S0-6", length_cm=120.0, loads=12)])
        result = TimingVerifier(c, VerifyConfig()).verify()
        assert any(v.kind.value == "setup" for v in result.violations)
