"""Tests for the time model (sections 2.2 and 2.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.timeline import (
    Timebase,
    circular_distance_forward,
    format_ns,
    interval_overlap,
    ns_to_ps,
    ps_to_ns,
    wrap_interval,
)


class TestConversions:
    def test_ns_to_ps_exact(self):
        assert ns_to_ps(1.0) == 1000
        assert ns_to_ps(6.25) == 6250
        assert ns_to_ps(0.1) == 100

    def test_round_trip(self):
        assert ps_to_ns(ns_to_ps(3.3)) == pytest.approx(3.3)

    def test_negative_times_allowed(self):
        assert ns_to_ps(-1.0) == -1000

    @given(st.integers(min_value=-10**9, max_value=10**9))
    def test_ps_ns_round_trip_integer(self, ps):
        assert ns_to_ps(ps_to_ns(ps)) == ps

    def test_format_one_decimal(self):
        assert format_ns(11500) == "11.5"
        assert format_ns(47500) == "47.5"

    def test_format_finer_resolution(self):
        assert format_ns(1250) == "1.25"

    def test_format_negative(self):
        assert format_ns(-1000) == "-1.0"


class TestTimebase:
    def test_paper_example(self):
        """50 ns cycle with 6.25 ns clock units gives 8 units per cycle."""
        tb = Timebase.from_ns(50.0, 6.25)
        assert tb.period_ps == 50000
        assert tb.units_per_period == 8.0

    def test_default_clock_unit_is_period_over_eight(self):
        tb = Timebase.from_ns(50.0)
        assert tb.clock_unit_ps == 6250

    def test_units_to_ps(self):
        tb = Timebase.from_ns(50.0, 6.25)
        assert tb.units_to_ps(4) == 25000
        assert tb.units_to_ps(2.5) == 15625

    def test_wrap_modulo_cycle(self):
        """Section 3.2: 'the assertion specification is taken modulo the
        cycle time' — unit 9 of an 8-unit cycle is unit 1."""
        tb = Timebase.from_ns(50.0, 6.25)
        assert tb.wrap(tb.units_to_ps(9)) == tb.units_to_ps(1)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            Timebase(period_ps=0, clock_unit_ps=1)

    def test_rejects_nonpositive_unit(self):
        with pytest.raises(ValueError):
            Timebase(period_ps=100, clock_unit_ps=0)

    def test_scaling_with_clock_rate(self):
        """Clock units scale with the period (section 2.3): the same
        assertion covers the same fraction of a slower cycle."""
        fast = Timebase.from_ns(50.0)
        slow = Timebase.from_ns(100.0)
        assert fast.units_to_ps(2) * 2 == slow.units_to_ps(2)


class TestWrapInterval:
    def test_plain_interval(self):
        assert wrap_interval(10, 20, 100) == [(10, 20)]

    def test_empty_interval(self):
        assert wrap_interval(10, 10, 100) == []

    def test_wrapping_interval(self):
        assert wrap_interval(90, 110, 100) == [(90, 100), (0, 10)]

    def test_negative_start(self):
        assert wrap_interval(-10, 10, 100) == [(90, 100), (0, 10)]

    def test_full_period_saturates(self):
        assert wrap_interval(30, 170, 100) == [(0, 100)]

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            wrap_interval(20, 10, 100)

    @given(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=300),
    )
    def test_total_length_preserved(self, start, length, period):
        pieces = wrap_interval(start, start + length, period)
        covered = sum(hi - lo for lo, hi in pieces)
        assert covered == min(length, period)
        for lo, hi in pieces:
            assert 0 <= lo < hi <= period


class TestIntervalHelpers:
    def test_overlap(self):
        assert interval_overlap((0, 10), (5, 20)) == 5
        assert interval_overlap((0, 10), (10, 20)) == 0
        assert interval_overlap((0, 10), (20, 30)) == 0

    def test_circular_distance(self):
        assert circular_distance_forward(90, 10, 100) == 20
        assert circular_distance_forward(10, 90, 100) == 80
        assert circular_distance_forward(10, 10, 100) == 0
