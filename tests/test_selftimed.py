"""Tests for self-timed module delay determination (section 4.2.1)."""

import pytest

from repro import Circuit, EXACT
from repro.selftimed import done_delay_ns, module_delay


def adder_module() -> Circuit:
    """A two-level function module with distinct fast and slow outputs."""
    c = Circuit("adder-module", period_ns=200.0, clock_unit_ns=25.0)
    for name in ("SUM LO", "SUM HI", "CARRY"):
        c.net(name).wire_delay_ps = (0, 0)
    c.chg("SUM LO", ["A", "B"], delay=(2.0, 6.5), name="low half", width=8)
    c.chg("CARRY", ["A", "B"], delay=(1.0, 4.0), name="carry net", width=1)
    c.chg("SUM HI", ["A", "CARRY"], delay=(2.0, 6.5), name="high half", width=8)
    return c


class TestModuleDelay:
    def test_single_level_delay(self):
        d = module_delay(adder_module(), ["A", "B"], ["SUM LO"])
        md = d["SUM LO"]
        assert md.min_ns == pytest.approx(2.0)
        assert md.max_ns == pytest.approx(6.5)

    def test_two_level_path_accumulates(self):
        d = module_delay(adder_module(), ["A", "B"], ["SUM HI"])
        md = d["SUM HI"]
        # Fastest: the direct A leg (2.0); slowest: through the carry
        # (4.0 + 6.5).
        assert md.min_ns == pytest.approx(2.0)
        assert md.max_ns == pytest.approx(10.5)

    def test_all_outputs_at_once(self):
        d = module_delay(adder_module(), ["A", "B"], ["SUM LO", "SUM HI", "CARRY"])
        assert set(d) == {"SUM LO", "SUM HI", "CARRY"}
        assert d["CARRY"].max_ns == pytest.approx(4.0)

    def test_done_delay_covers_slowest_output(self):
        """The matched 'done' line must outlast the slowest output —
        section 4.2.1's purpose for the technique."""
        d = module_delay(adder_module(), ["A", "B"], ["SUM LO", "SUM HI"])
        assert done_delay_ns(d) == pytest.approx(10.5)
        assert done_delay_ns(d, margin_ns=1.5) == pytest.approx(12.0)

    def test_unconnected_output_rejected(self):
        c = adder_module()
        c.net("FLOATER").wire_delay_ps = (0, 0)
        c.chg("FLOATER", ["OTHER IN"], delay=(1.0, 2.0), name="island")
        with pytest.raises(ValueError, match="never changes"):
            module_delay(c, ["A", "B"], ["FLOATER"])

    def test_unsettled_output_rejected(self):
        c = Circuit("slow", period_ns=10.0, clock_unit_ns=1.25)
        c.net("OUT").wire_delay_ps = (0, 0)
        c.chg("OUT", ["A"], delay=(2.0, 40.0), name="snail")
        with pytest.raises(ValueError, match="settle"):
            module_delay(c, ["A"], ["OUT"])

    def test_unknown_input_rejected(self):
        with pytest.raises(KeyError):
            module_delay(adder_module(), ["NOPE"], ["SUM LO"])

    def test_wire_delays_respected(self):
        c = adder_module()
        from dataclasses import replace

        config = replace(EXACT, default_wire_delay_ns=(0.5, 1.0))
        d = module_delay(c, ["A", "B"], ["SUM LO"], config)
        # One wire hop into the CHG gate adds 0.5/1.0.
        assert d["SUM LO"].min_ns == pytest.approx(2.5)
        assert d["SUM LO"].max_ns == pytest.approx(7.5)
