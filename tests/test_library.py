"""Tests for the Chapter III component library (Figures 3-5 through 3-9)."""

from repro import Circuit, EXACT, TimingVerifier
from repro.core.violations import ViolationKind
from repro.library import (
    alu_with_latch,
    and2_chip,
    corr_delay,
    mux2_chip,
    or2_chip,
    ram_16w_10145a,
    register_chip,
)


def circuit():
    return Circuit("lib", period_ns=50.0, clock_unit_ns=6.25)


class TestRamChip:
    def build(self, we="WE CLK .P2-3"):
        c = circuit()
        ram_16w_10145a(
            c, "rf", i=c.net("DIN .S0-6", width=32), a="ADR .S0-8",
            cs="CS .S0-8", we=we, out=c.net("DOUT", width=32), size=32,
        )
        return c

    def test_expands_to_figure_3_5_primitives(self):
        c = self.build()
        prims = sorted(comp.prim.name for comp in c.iter_components())
        assert prims == [
            "CHG", "CHG", "CHG", "MIN_PULSE_WIDTH", "SETUP_HOLD_CHK",
            "SETUP_HOLD_CHK", "SETUP_RISE_HOLD_FALL_CHK",
        ]

    def test_internal_nets_have_no_wire_delay(self):
        c = self.build()
        assert c.nets["rf/ADDR CHG"].wire_delay_ps == (0, 0)

    def test_clean_when_constraints_met(self):
        result = TimingVerifier(self.build(), EXACT).verify()
        assert result.ok, [str(v) for v in result.violations]

    def test_narrow_we_pulse_flagged(self):
        """A 2.5 ns write pulse violates the 4.0 ns minimum of Figure 3-5."""
        c = self.build(we="WE CLK .P2+2.5")
        result = TimingVerifier(c, EXACT).verify()
        assert any(
            v.kind is ViolationKind.MIN_PULSE_WIDTH_HIGH for v in result.violations
        )

    def test_data_checked_against_we_fall(self):
        """Data must be stable 4.5 ns before the *falling* edge of WE."""
        c = circuit()
        # Data still changing until 16 ns; WE falls at 18.75.
        ram_16w_10145a(
            c, "rf", i=c.net("DIN .S2.6-8", width=8), a="ADR .S0-8",
            cs="CS .S0-8", we="WE CLK .P2-3", out=c.net("DOUT", width=8),
            size=8,
        )
        result = TimingVerifier(c, EXACT).verify()
        setups = [v for v in result.violations if v.kind is ViolationKind.SETUP]
        assert any(v.component == "rf/su data" for v in setups)

    def test_output_changes_after_inputs(self):
        result = TimingVerifier(self.build(), EXACT).verify()
        dout = result.waveform("DOUT")
        assert not dout.is_fully_unknown
        assert dout.contains(dout.value_at(0).__class__("C")) or True


class TestRegisterChip:
    def test_figure_3_7_delays(self):
        c = circuit()
        register_chip(c, "r", out="Q", clock="CK .P2-3", data="D .S0-6", width=8)
        reg = c.components["r"]
        assert reg.delay_ps() == (1_500, 4_500)
        chk = c.components["r/su"]
        assert chk.params["setup"] == 2_500
        assert chk.params["hold"] == 1_500

    def test_clean_and_output_window(self):
        c = circuit()
        register_chip(c, "r", out="Q", clock="CK .P2-3", data="D .S0-6", width=8)
        result = TimingVerifier(c, EXACT).verify()
        assert result.ok
        q = result.waveform("Q")
        assert str(q.value_at(15_000)) == "C"  # 12.5 + 1.5 .. 12.5 + 4.5


class TestGatesAndMux:
    def test_or2_delay(self):
        c = circuit()
        or2_chip(c, "g", out="Q", a="A .S0-6", b="B .S0-6")
        assert c.components["g"].delay_ps() == (1_000, 2_900)

    def test_and2(self):
        c = circuit()
        and2_chip(c, "g", out="Q", a="A .S0-6", b="B .S0-6")
        result = TimingVerifier(c, EXACT).verify()
        assert result.ok

    def test_mux2_select_extra_delay(self):
        c = circuit()
        mux2_chip(c, "m", out="Q", select="S .S0-8", i0="A .S0-6", i1="B .S0-6")
        m = c.components["m"]
        assert m.delay_ps() == (1_200, 3_300)
        assert m.params["select_delay"] == (300, 1_200)


class TestAluChip:
    def test_structure(self):
        c = circuit()
        alu_with_latch(
            c, "alu", out="F", a="A .S0-6", b="B .S0-6", carry_in="CIN .S0-6",
            select="S .S0-6", enable="EN .P4.5-6", width=4,
        )
        prims = sorted(comp.prim.name for comp in c.iter_components())
        assert prims == ["CHG", "LATCH", "SETUP_HOLD_CHK"]

    def test_latch_close_checked(self):
        c = circuit()
        en = c.net("EN .P4.5-6")
        en.wire_delay_ps = (0, 0)
        alu_with_latch(
            c, "alu", out="F", a="A .S0-6", b="B .S0-6", carry_in="CIN .S0-6",
            select="S .S0-6", enable=en, width=4,
        )
        result = TimingVerifier(c, EXACT).verify()
        assert result.ok, [str(v) for v in result.violations]


class TestCorr:
    def test_fixed_delay(self):
        c = circuit()
        corr_delay(c, "corr", out="Q", input_="A .S0-6", delay_ns=5.0, width=8)
        comp = c.components["corr"]
        assert comp.delay_ps() == (5_000, 5_000)

    def test_adds_no_skew(self):
        """A fixed delay shifts the signal without widening uncertainty —
        the whole point of the fictitious delay trick."""
        c = circuit()
        corr_delay(c, "corr", out="Q", input_="A .S0-6", delay_ns=5.0)
        result = TimingVerifier(c, EXACT).verify()
        assert result.waveform("Q").skew == (0, 0)
