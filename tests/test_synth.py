"""Tests for the synthetic S-1-scale design generator."""

import pytest

from repro import TimingVerifier
from repro.workloads.synth import SynthConfig, generate, s1_scale_config


class TestGenerator:
    def test_deterministic(self):
        a = generate(SynthConfig(chips=100))
        b = generate(SynthConfig(chips=100))
        assert a.source == b.source

    def test_seed_changes_design(self):
        a = generate(SynthConfig(chips=100, seed=1))
        b = generate(SynthConfig(chips=100, seed=2))
        assert a.source != b.source

    def test_chip_count_exact(self):
        d = generate(SynthConfig(chips=137))
        assert d.chips == 137

    def test_headline_statistics_tracked(self):
        d = generate(SynthConfig(chips=200))
        assert d.gate_equivalents > 0
        assert d.memory_bits >= 0
        assert sum(d.chips_by_type.values()) == d.chips

    def test_expands_to_circuit(self):
        d = generate(SynthConfig(chips=150))
        circuit, stats = d.circuit()
        assert stats.primitives == len(circuit.components)
        # Every chip is one macro call; CORR fictitious delays add a few
        # more calls without counting as chips (section 4.2.3).
        assert stats.macro_calls >= d.chips

    def test_shape_near_published(self):
        """Primitives/chip and mean width land near Table 3-2's 1.3 / 6.5."""
        d = generate(SynthConfig(chips=400))
        circuit, _ = d.circuit()
        st = circuit.stats()
        prims_per_chip = st["primitive_count"] / d.chips
        assert 1.2 <= prims_per_chip <= 1.7
        assert 3.0 <= st["mean_width"] <= 10.0
        assert st["bit_blasted_count"] > 3 * st["primitive_count"]

    def test_verifies_clean(self):
        """The generated design models a debugged S-1: no timing errors."""
        d = generate(SynthConfig(chips=250))
        circuit, _ = d.circuit()
        result = TimingVerifier(circuit).verify()
        assert result.ok, [str(v) for v in result.violations[:5]]

    @pytest.mark.parametrize("seed", [1, 2, 3, 7, 42])
    def test_clean_across_seeds(self, seed):
        d = generate(SynthConfig(chips=120, seed=seed))
        circuit, _ = d.circuit()
        result = TimingVerifier(circuit).verify()
        assert result.ok, [str(v) for v in result.violations[:5]]

    def test_multiple_stages(self):
        d = generate(SynthConfig(chips=300, stage_chips=100))
        circuit, _ = d.circuit()
        # Stage-2 and -3 nets exist: the pipeline really is deep.
        assert any(name.startswith("S2 ") for name in circuit.nets)

    def test_s1_scale_config(self):
        assert s1_scale_config().chips == 6_357

    def test_events_scale_with_size(self):
        small_c, _ = generate(SynthConfig(chips=60)).circuit()
        large_c, _ = generate(SynthConfig(chips=240)).circuit()
        small = TimingVerifier(small_c).verify()
        large = TimingVerifier(large_c).verify()
        assert large.stats.events > 2 * small.stats.events
