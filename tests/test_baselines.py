"""Tests for the two baseline approaches of section 1.4."""

import pytest

from repro import Circuit, EXACT, TimingVerifier
from repro.baselines import (
    LV,
    LogicSimulator,
    PathAnalyzer,
    exhaustive_vectors,
    gate_value,
)
from repro.workloads import fig_2_6_case_analysis


def circuit():
    return Circuit("t", period_ns=50.0, clock_unit_ns=6.25)


class TestSixValueAlgebra:
    def test_definite_levels(self):
        assert gate_value("AND", [LV.ONE, LV.ONE]) is LV.ONE
        assert gate_value("AND", [LV.ZERO, LV.ONE]) is LV.ZERO
        assert gate_value("OR", [LV.ZERO, LV.ONE]) is LV.ONE
        assert gate_value("XOR", [LV.ONE, LV.ONE]) is LV.ZERO
        assert gate_value("NAND", [LV.ONE, LV.ONE]) is LV.ZERO

    def test_transitions_propagate(self):
        assert gate_value("AND", [LV.ONE, LV.U]) is LV.U
        assert gate_value("AND", [LV.ONE, LV.D]) is LV.D
        assert gate_value("OR", [LV.ZERO, LV.U]) is LV.U
        assert gate_value("NOT", [LV.U]) is LV.D

    def test_controlling_value_masks_transition(self):
        assert gate_value("AND", [LV.ZERO, LV.U]) is LV.ZERO
        assert gate_value("OR", [LV.ONE, LV.D]) is LV.ONE

    def test_unknown(self):
        assert gate_value("AND", [LV.X, LV.ONE]) is LV.X
        assert gate_value("AND", [LV.X, LV.ZERO]) is LV.ZERO

    def test_spike_propagates_unless_masked(self):
        assert gate_value("AND", [LV.E, LV.ONE]) is LV.E
        assert gate_value("AND", [LV.E, LV.ZERO]) is LV.ZERO

    def test_crossing_transitions_are_a_potential_spike(self):
        """Two rising inputs through an XOR start and end at 0 but may
        momentarily expose a 1 — TEGAS's E value."""
        assert gate_value("XOR", [LV.U, LV.U]) is LV.E
        assert gate_value("AND", [LV.U, LV.D]) is LV.E


class TestLogicSimulator:
    def _pipeline(self):
        c = circuit()
        c.gate("AND", "N1", ["A", "B"], delay=(1.0, 3.0))
        c.reg("Q", clock="CK .P2-3", data="N1", delay=(1.5, 4.5))
        c.setup_hold("N1", "CK .P2-3", setup=2.5, hold=1.5)
        return c

    def test_functional_simulation(self):
        c = self._pipeline()
        sim = LogicSimulator(c)
        sim.drive("A", [1, 1])
        sim.drive("B", [1, 1])
        result = sim.run(cycles=2)
        assert result.final_values["Q"] is LV.ONE
        assert result.ok

    def test_gate_result_depends_on_vector(self):
        c = self._pipeline()
        sim = LogicSimulator(c)
        sim.drive("A", [1, 0])
        sim.drive("B", [1, 1])
        result = sim.run(cycles=2)
        assert result.final_values["N1"] is LV.ZERO

    def test_setup_violation_found_on_sensitising_vector_only(self):
        """The thesis's core criticism (section 1.4.1): simulation only
        shows that the *cases simulated* work.  A slow path hides behind a
        gate until a vector sensitises it."""
        c = circuit()
        # Slow path through IN2 lands inside the setup window of the clock
        # edge at 12.5 ns (the data settles ~11.5 ns into the cycle).
        c.gate("BUF", "SLOW", ["IN2 .S0-6"], delay=(9.5, 10.5), name="slowbuf")
        c.gate("AND", "D", ["SLOW", "SEL .S0-8"], delay=(0.5, 1.0), name="g")
        c.reg("Q", clock="CK .P2-3", data="D", delay=(1.5, 4.5))
        c.setup_hold("D", "CK .P2-3", setup=2.5, hold=0.0)

        blind = LogicSimulator(c)
        blind.drive("IN2 .S0-6", [1, 1])
        blind.drive("SEL .S0-8", [0, 0])  # path never sensitised: looks fine
        assert blind.run(cycles=2).ok

        seeing = LogicSimulator(c)
        seeing.drive("IN2 .S0-6", [0, 1])
        seeing.drive("SEL .S0-8", [1, 1])
        result = seeing.run(cycles=2)
        assert any(v.kind == "setup" for v in result.violations)

        # The Verifier needs no vectors at all to find the same error.
        tv = TimingVerifier(c, EXACT).verify()
        assert any(v.kind.value == "setup" for v in tv.violations)

    def test_chg_rejected(self):
        c = circuit()
        c.chg("OUT", ["A"], delay=(1.0, 2.0))
        with pytest.raises(ValueError, match="boolean"):
            LogicSimulator(c)

    def test_cannot_drive_internal_net(self):
        c = self._pipeline()
        sim = LogicSimulator(c)
        with pytest.raises(ValueError, match="driven by logic"):
            sim.drive("N1", [0])

    def test_unknown_net_rejected(self):
        sim = LogicSimulator(self._pipeline())
        with pytest.raises(KeyError):
            sim.drive("NOPE", [0])

    def test_event_count_grows_with_vectors(self):
        c = self._pipeline()
        sim = LogicSimulator(c)
        sim.drive("A", [0, 1, 0, 1])
        sim.drive("B", [1, 1, 0, 0])
        short = sim.run(cycles=2).events
        long = sim.run(cycles=4).events
        assert long > short

    def test_exhaustive_vectors(self):
        assert len(exhaustive_vectors(3)) == 8
        assert len(exhaustive_vectors(10)) == 1024


class TestPathAnalyzer:
    def test_register_to_register_path(self):
        c = circuit()
        c.reg("Q1", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        c.gate("AND", "N", ["Q1", "EN .S0-8"], delay=(1.0, 3.0))
        c.reg("Q2", clock="CK .P2-3", data="N", delay=(1.5, 4.5))
        c.setup_hold("N", "CK .P2-3", setup=2.5, hold=0.0)
        report = PathAnalyzer(c, EXACT).analyze()
        # Q1 settles at 12.5+4.5 = 17; N at 17+3 = 20 — meets the next edge.
        assert report.arrivals["N"] == (15_000, 20_000)
        assert report.ok

    def test_setup_violation_on_long_path(self):
        c = circuit()
        c.reg("Q1", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        c.gate("BUF", "N", ["Q1"], delay=(50.0, 55.0), name="slow")
        c.setup_hold("N", "CK .P2-3", setup=2.5, hold=0.0)
        report = PathAnalyzer(c, EXACT).analyze()
        assert any(v.kind == "setup" for v in report.violations)

    def test_figure_2_6_spurious_path(self):
        """The headline failure mode: without value knowledge the path
        searcher includes the impossible 40 ns path; the Verifier's case
        analysis measures 30 ns on the same circuit."""
        c = fig_2_6_case_analysis(with_cases=True)
        report = PathAnalyzer(c, EXACT).analyze()
        assert report.arrivals["OUTPUT"][1] == 50_000  # 10 + (spurious) 40

        tv = TimingVerifier(c, EXACT).verify()
        out = tv.waveform("OUTPUT")
        assert out.describe() == "S 30.0 C 40.0 S"  # 10 + (real) 30

    def test_gated_clock_defeats_path_search(self):
        """A register clocked through a gate has no asserted clock net —
        the path searcher reports it rather than analysing it."""
        c = circuit()
        c.gate("AND", "GCLK", ["CK .P2-3", "EN .S0-8"], delay=(1.0, 2.0))
        c.reg("Q", clock="GCLK", data="D .S0-6", delay=(1.5, 4.5))
        report = PathAnalyzer(c, EXACT).analyze()
        assert any(v.kind == "unclocked" for v in report.violations)

    def test_loop_hits_search_limit(self):
        """Like GRASP: an unbroken loop stops at the search limit instead
        of hanging."""
        c = circuit()
        # A combinational loop reachable from an asserted input.
        c.gate("OR", "A", ["B", "SEED .S0-6"], delay=(1.0, 2.0), name="g1")
        c.gate("BUF", "B", ["A"], delay=(1.0, 2.0), name="g2")
        report = PathAnalyzer(c, EXACT, search_limit=10).analyze()
        assert report.loops
