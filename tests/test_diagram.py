"""Tests for the ASCII timing-diagram renderer."""

import pytest

from repro import Circuit, EXACT, TimingVerifier
from repro.core.values import CHANGE, ONE, STABLE, UNKNOWN, ZERO
from repro.core.waveform import Waveform
from repro.reporting.diagram import render_waveform, timing_diagram

P = 50_000


class TestRenderWaveform:
    def test_clock_shape(self):
        clk = Waveform.from_intervals(P, ZERO, [(20_000, 30_000, ONE)])
        trace = render_waveform(clk, width=50)
        assert trace == "_" * 20 + "~" * 10 + "_" * 20

    def test_stable_and_changing(self):
        wf = Waveform.from_intervals(P, STABLE, [(25_000, 50_000, CHANGE)])
        trace = render_waveform(wf, width=10)
        assert trace == "=====xxxxx"

    def test_skew_shows_as_edges(self):
        clk = Waveform.from_intervals(
            P, ZERO, [(20_000, 30_000, ONE)], skew=(0, 5_000)
        )
        trace = render_waveform(clk, width=50)
        assert "/" in trace and "\\" in trace

    def test_narrow_events_never_vanish(self):
        """A 1 ps change marker must still occupy a column."""
        wf = Waveform.from_intervals(P, STABLE, [(25_000, 25_001, CHANGE)])
        assert "x" in render_waveform(wf, width=20)

    def test_unknown_glyph(self):
        assert render_waveform(Waveform.constant(P, UNKNOWN), width=5) == "?????"

    def test_width_validated(self):
        with pytest.raises(ValueError):
            render_waveform(Waveform.constant(P, ZERO), width=0)

    def test_trace_length_matches_width(self):
        wf = Waveform.from_intervals(P, ZERO, [(1_000, 2_000, ONE)])
        for width in (7, 31, 60, 111):
            assert len(render_waveform(wf, width)) == width


class TestTimingDiagram:
    def _result(self):
        c = Circuit("d", period_ns=50.0, clock_unit_ns=6.25)
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        return TimingVerifier(c, EXACT).verify()

    def test_contains_all_signals_by_default(self):
        text = timing_diagram(self._result())
        for name in ("CK .P2-3", "D .S0-6", "Q"):
            assert name in text

    def test_signal_selection_and_order(self):
        text = timing_diagram(self._result(), ["Q", "CK .P2-3"])
        lines = text.splitlines()
        assert lines[1].startswith("Q")
        assert lines[2].startswith("CK .P2-3")
        assert "D .S0-6" not in text

    def test_unknown_signal_rejected(self):
        with pytest.raises(KeyError):
            timing_diagram(self._result(), ["NOPE"])

    def test_legend_present(self):
        assert "~ high" in timing_diagram(self._result())

    def test_cli_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.hdl.writer import save_scald

        c = Circuit("d", period_ns=50.0, clock_unit_ns=6.25)
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        path = tmp_path / "d.scald"
        save_scald(c, str(path))
        assert main([str(path), "--diagram"]) == 0
        assert "~ high" in capsys.readouterr().out
