"""Round-trip tests for the SCALD serializer."""

import pytest

from repro import Circuit, EXACT, TimingVerifier, VerifyConfig
from repro.hdl.expander import expand_source
from repro.hdl.writer import save_scald, write_scald
from repro.workloads import fig_2_5_register_file, fig_2_6_case_analysis
from repro.workloads.synth import SynthConfig, generate


def roundtrip(circuit: Circuit) -> Circuit:
    source = write_scald(circuit)
    reloaded, _stats = expand_source(source, filename="<roundtrip>")
    return reloaded


def results_equal(a, b) -> bool:
    """Same violations (by kind/signal/window) and same signal waveforms."""
    va = sorted((v.kind.value, v.signal, v.window or (0, 0)) for v in a.violations)
    vb = sorted((v.kind.value, v.signal, v.window or (0, 0)) for v in b.violations)
    return va == vb


class TestRoundTrip:
    def test_structure_preserved(self):
        original = fig_2_5_register_file()
        reloaded = roundtrip(original)
        assert len(reloaded.components) == len(original.components)
        assert reloaded.stats()["by_type"] == original.stats()["by_type"]
        assert reloaded.timebase == original.timebase

    def test_verification_identical_fig_2_5(self):
        original = fig_2_5_register_file()
        reloaded = roundtrip(original)
        ra = TimingVerifier(original).verify()
        rb = TimingVerifier(reloaded).verify()
        assert results_equal(ra, rb)
        assert len(rb.violations) == 2

    def test_cases_preserved(self):
        original = fig_2_6_case_analysis(with_cases=True)
        reloaded = roundtrip(original)
        assert reloaded.cases == original.cases
        ra = TimingVerifier(original, EXACT).verify()
        rb = TimingVerifier(reloaded, EXACT).verify()
        assert (
            rb.waveform("OUTPUT", case=0).describe()
            == ra.waveform("OUTPUT", case=0).describe()
        )

    def test_wire_overrides_preserved(self):
        original = fig_2_5_register_file()
        reloaded = roundtrip(original)
        assert reloaded.nets["ADR"].wire_delay_ps == (0, 6_000)

    def test_directives_and_inverts_preserved(self):
        original = fig_2_5_register_file()
        source = write_scald(original)
        assert "&H" in source
        assert '-"RAM WE"' in source

    def test_synth_design_roundtrip(self):
        circuit, _ = generate(SynthConfig(chips=120)).circuit()
        reloaded = roundtrip(circuit)
        ra = TimingVerifier(circuit).verify()
        rb = TimingVerifier(reloaded).verify()
        assert ra.ok and rb.ok
        assert rb.stats.events == ra.stats.events

    def test_aliases_written_as_representatives(self):
        c = Circuit("alias", period_ns=50.0, clock_unit_ns=6.25)
        c.buf("OUT", "INNER NAME", delay=(1.0, 2.0))
        c.alias("INNER NAME", "REAL SIG .S0-6")
        reloaded = roundtrip(c)
        result = TimingVerifier(reloaded, EXACT).verify()
        # The buffer reads the asserted signal, not a floating alias.
        assert not result.waveform("OUT").is_fully_unknown

    def test_roundtrip_property_random_designs(self):
        """Any generated design round-trips to an equivalent verification."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.integers(min_value=1, max_value=500))
        @settings(max_examples=8, deadline=None)
        def check(seed):
            circuit, _ = generate(SynthConfig(chips=60, seed=seed)).circuit()
            reloaded = roundtrip(circuit)
            ra = TimingVerifier(circuit).verify()
            rb = TimingVerifier(reloaded).verify()
            assert results_equal(ra, rb)
            assert len(reloaded.components) == len(circuit.components)

        check()

    def test_vector_widths_preserved(self):
        original = fig_2_5_register_file()
        reloaded = roundtrip(original)
        for name, net in original.nets.items():
            rep = original.find(net)
            assert reloaded.nets[rep.name].width == rep.width

    def test_lane_case_keys_roundtrip(self):
        """A per-lane case key survives without minting a spurious net."""
        c = Circuit("lanecase", period_ns=50.0, clock_unit_ns=12.5)
        c.net("EN .S0-6", width=8)
        d = c.net("D .C1-2")
        q = c.net("Q", width=8)
        c.gate("AND", q, [d, "EN .S0-6"], delay=(2.0, 3.0), name="g", width=8)
        c.add_case_by_name({"EN .S0-6 [0]": 0, "EN .S0-6 [5]": 0})
        reloaded = roundtrip(c)
        assert reloaded.cases == c.cases
        assert "EN .S0-6 [0]" not in reloaded.nets  # a lane ref, not a net
        assert reloaded.nets["EN .S0-6"].width == 8
        ra = TimingVerifier(c, EXACT).verify()
        rb = TimingVerifier(reloaded, EXACT).verify()
        assert results_equal(ra, rb)

    def test_save_scald_writes_file(self, tmp_path):
        path = tmp_path / "out.scald"
        save_scald(fig_2_6_case_analysis(), str(path))
        text = path.read_text()
        assert "design fig_2_6;" in text
        reloaded, _ = expand_source(text)
        assert len(reloaded.components) == 4

    def test_cli_accepts_written_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "rt.scald"
        save_scald(fig_2_5_register_file(), str(path))
        assert main([str(path)]) == 1  # the two Figure 3-11 errors


class TestInstanceNameFidelity:
    """Regression: the writer used to regenerate instance names as
    ``c1, c2, ...``, so a written-and-re-expanded Figure 2-5 reported its
    violations at ``c7``/``c11`` instead of ``rf/su addr``/``out reg/su``
    — destroying provenance.  Names now survive the round-trip."""

    def test_fig_2_5_violations_name_original_components(self):
        original = fig_2_5_register_file()
        reloaded = roundtrip(original)
        ra = TimingVerifier(original).verify()
        rb = TimingVerifier(reloaded).verify()
        assert [v.component for v in ra.violations] == ["rf/su addr", "out reg/su"]
        assert [v.component for v in rb.violations] == ["rf/su addr", "out reg/su"]

    def test_component_names_preserved(self):
        original = fig_2_5_register_file()
        reloaded = roundtrip(original)
        assert sorted(reloaded.components) == sorted(original.components)

    @pytest.mark.parametrize(
        "make",
        [
            pytest.param(lambda: __import__(
                "repro.workloads.figures", fromlist=["fig_1_5_gated_clock"]
            ).fig_1_5_gated_clock(), id="fig_1_5"),
            pytest.param(lambda: __import__(
                "repro.workloads.figures", fromlist=["fig_1_5_gated_clock"]
            ).fig_1_5_gated_clock(use_directive=True), id="fig_1_5_directive"),
            pytest.param(fig_2_5_register_file, id="fig_2_5"),
            pytest.param(fig_2_6_case_analysis, id="fig_2_6"),
            pytest.param(lambda: __import__(
                "repro.workloads.figures", fromlist=["fig_3_12_alu_datapath"]
            ).fig_3_12_alu_datapath(), id="fig_3_12"),
            pytest.param(lambda: __import__(
                "repro.workloads.figures", fromlist=["fig_4_1_correlation"]
            ).fig_4_1_correlation(), id="fig_4_1"),
        ],
    )
    def test_violation_strings_identical_for_figure_circuits(self, make):
        """Round-trip fidelity is judged on the full violation *strings*
        (component, signal, window, waveform detail), not just counts."""
        original = make()
        reloaded = roundtrip(original)
        ra = TimingVerifier(original).verify()
        rb = TimingVerifier(reloaded).verify()
        assert [v.message() for v in rb.violations] == [
            v.message() for v in ra.violations
        ]
        assert rb.error_listing() == ra.error_listing()
