"""Tests for the static analysis package (``repro.sta``).

Three layers: interval-set algebra edge cases (the wraparound axis is
where off-by-ones live), the dataflow passes on hand-built circuits with
known answers, and the enclosure soundness contract — static windows must
contain every engine transition, checked deterministically on a size/seed
matrix and property-style under hypothesis.
"""

import glob
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Circuit, TimingVerifier, VerifyConfig
from repro.hdl.expander import MacroExpander
from repro.lint import LintConfig, lint_circuit
from repro.sta import (
    IntervalSet,
    analyze,
    check_encloses,
    compute_slack,
    compute_windows,
    infer_domains,
)
from repro.workloads.synth import SynthConfig, generate

PERIOD = 50_000


def circuit():
    return Circuit("p", period_ns=50.0, clock_unit_ns=6.25)


# ---------------------------------------------------------------------------
# IntervalSet algebra
# ---------------------------------------------------------------------------


class TestIntervalSet:
    def test_empty_is_interned(self):
        a = IntervalSet.empty(PERIOD)
        b = IntervalSet.empty(PERIOD)
        assert a is b
        assert a.is_empty and not a.is_full
        assert a.measure() == 0

    def test_normalization_sorts_and_merges(self):
        s = IntervalSet(PERIOD, ((30_000, 40_000), (10_000, 20_000),
                                 (18_000, 25_000)))
        assert s.spans == ((10_000, 25_000), (30_000, 40_000))

    def test_wraparound_span_is_canonical(self):
        # A span crossing the period boundary keeps lo in [0, period).
        s = IntervalSet(PERIOD, ((45_000, 55_000),))
        assert s.covers(46_000, 48_000)
        assert s.covers(1_000, 4_000)      # the wrapped tail
        assert s.covers(48_000, 52_000)    # across the boundary itself
        assert not s.covers(6_000, 7_000)

    def test_wrap_merge_with_zero_start(self):
        # [45000, 50000) tail meeting [0, 5000] head merges across zero.
        s = IntervalSet(PERIOD, ((45_000, 49_999), (49_999, 55_000),))
        assert len(s.spans) == 1
        assert s.covers(49_000, 51_000)

    def test_full_collapse(self):
        s = IntervalSet(PERIOD, ((0, PERIOD - 1), (PERIOD - 1, PERIOD),))
        assert s.is_full
        assert s.covers(0, PERIOD)
        assert s.measure() == PERIOD

    def test_zero_width_window(self):
        point = IntervalSet(PERIOD, ((12_345, 12_345),))
        assert not point.is_empty
        assert point.measure() == 0
        assert point.covers(12_345, 12_345)
        assert not point.covers(12_345, 12_346)

    def test_zero_width_shift_widens(self):
        point = IntervalSet(PERIOD, ((10_000, 10_000),))
        shifted = point.shift(1_000, 3_000)
        assert shifted.spans == ((11_000, 13_000),)

    def test_shift_wraps(self):
        s = IntervalSet(PERIOD, ((48_000, 49_000),))
        shifted = s.shift(2_000, 4_000)
        assert shifted.covers(0, 3_000)
        assert not shifted.covers(4_000, 5_000)

    def test_shift_zero_is_identity(self):
        s = IntervalSet(PERIOD, ((1, 2),))
        assert s.shift(0, 0) is s

    def test_shift_overflow_to_full(self):
        # Widening by a whole period leaves nowhere uncovered.
        s = IntervalSet(PERIOD, ((0, 1),))
        assert s.shift(0, PERIOD).is_full

    def test_union_and_uncovered(self):
        a = IntervalSet(PERIOD, ((0, 10_000),))
        b = IntervalSet(PERIOD, ((20_000, 30_000),))
        u = a.union(b)
        assert u.spans == ((0, 10_000), (20_000, 30_000))
        assert u.contains_set(a) and u.contains_set(b)
        assert a.uncovered(b) == [(20_000, 30_000)]
        assert u.uncovered(b) == []

    def test_union_noop_returns_self(self):
        a = IntervalSet(PERIOD, ((0, 10_000),))
        assert a.union(IntervalSet.empty(PERIOD)) is a

    def test_mismatched_periods_rejected(self):
        a = IntervalSet(PERIOD, ((0, 1),))
        b = IntervalSet(PERIOD * 2, ((0, 1),))
        with pytest.raises(ValueError):
            a.union(b)


# ---------------------------------------------------------------------------
# dataflow passes on hand-built circuits
# ---------------------------------------------------------------------------


class TestWindows:
    def test_stable_input_has_empty_windows(self):
        c = circuit()
        c.buf("OUT", "A .S0-8", delay=(1.0, 2.0))
        an = compute_windows(c)
        rise, fall = an.by_name("OUT")
        assert rise.is_empty and fall.is_empty

    def test_clock_windows_follow_delay(self):
        c = circuit()
        c.buf("OUT", "CK .P2-3", delay=(1.0, 2.0))
        an = compute_windows(c)
        ck_r, _ = an.by_name("CK .P2-3")
        out_r, _ = an.by_name("OUT")
        # Delayed by [1000, 2000] ps (plus the engine's 1 ps edge paint).
        assert not out_r.is_empty
        lo, hi = ck_r.spans[0]
        assert out_r.covers(lo + 1_000, hi + 2_000)

    def test_feedback_widens_to_full_period(self):
        c = circuit()
        c.gate("NOR", "Q", ["R .S0-6", "QB"], delay=(1.0, 2.0), name="g1")
        c.gate("NOR", "QB", ["S .S0-6", "Q"], delay=(1.0, 2.0), name="g2")
        an = compute_windows(c)
        assert an.feedback, "cross-coupled gates must be reported as a cut"
        for net_name in ("Q", "QB"):
            rise, fall = an.by_name(net_name)
            assert rise.is_full and fall.is_full
        cut_nets = {cut.net for cut in an.feedback}
        assert cut_nets == {"Q", "QB"}

    def test_register_cuts_feedback(self):
        # A registered loop is not combinational feedback: no cuts.
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D", delay=(1.0, 2.0))
        c.gate("NOT", "D", ["Q"], delay=(1.0, 2.0))
        an = compute_windows(c)
        assert not an.feedback
        rise, fall = an.by_name("Q")
        assert not rise.is_full


class TestDomains:
    def test_single_domain(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.0, 2.0))
        dom = infer_domains(c, compute_windows(c))
        assert [r.net for r in dom.roots] == ["CK .P2-3"]
        (entry,) = dom.storage
        assert entry.roots == frozenset({"CK .P2-3"})
        assert not (entry.gated or entry.convergent or entry.unclocked)
        assert dom.crossings == []

    def test_gated_and_convergent_clock(self):
        c = circuit()
        c.gate("AND", "GCK", ["CK .P2-3", "EN .S0-8"], delay=(1.0, 2.0))
        c.reg("Q1", clock="GCK", data="D .S0-6", name="r1")
        c.gate("OR", "MCK", ["CK .P2-3", "CK2 .P4-5"], delay=(1.0, 2.0))
        c.reg("Q2", clock="MCK", data="D .S0-6", name="r2")
        dom = infer_domains(c, compute_windows(c))
        r1 = dom.of_component("r1")
        assert r1.gated and not r1.convergent
        r2 = dom.of_component("r2")
        assert r2.convergent and r2.roots == frozenset(
            {"CK .P2-3", "CK2 .P4-5"}
        )

    def test_unclocked_storage(self):
        c = circuit()
        c.reg("Q", clock="TIED", data="D .S0-6", name="r")
        c.net("TIED")  # undriven, unasserted: statically quiet
        dom = infer_domains(c, compute_windows(c))
        assert dom.of_component("r").unclocked

    def test_crossing_without_synchronizer(self):
        c = circuit()
        c.reg("Q1", clock="CKA .P2-3", data="D .S0-6", name="ra")
        c.reg("Q2", clock="CKB .P4-5", data="Q1", name="rb")
        c.gate("NOT", "OUT", ["Q2"])  # combinational consumer: not a sync
        dom = infer_domains(c, compute_windows(c))
        (crossing,) = dom.crossings
        assert crossing.component == "rb"
        assert crossing.foreign_roots == frozenset({"CKA .P2-3"})
        assert not crossing.synchronized

    def test_crossing_through_logic(self):
        c = circuit()
        c.reg("Q1", clock="CKA .P2-3", data="D .S0-6", name="ra")
        c.gate("AND", "M", ["Q1", "EN .S0-8"])
        c.reg("Q2", clock="CKB .P4-5", data="M", name="rb")
        dom = infer_domains(c, compute_windows(c))
        assert [x.component for x in dom.crossings] == ["rb"]

    def test_two_flop_synchronizer_is_demoted(self):
        c = circuit()
        c.reg("Q1", clock="CKA .P2-3", data="D .S0-6", name="ra")
        c.reg("Q2", clock="CKB .P4-5", data="Q1", name="sync1")
        c.reg("Q3", clock="CKB .P4-5", data="Q2", name="sync2")
        dom = infer_domains(c, compute_windows(c))
        (crossing,) = dom.crossings
        assert crossing.component == "sync1"
        assert crossing.synchronized


class TestSlack:
    def test_positive_slack_on_shifter(self):
        c = MacroExpander.from_file("examples/designs/shifter.scald").expand()
        records = compute_slack(c, compute_windows(c))
        assert records and all(r.ok for r in records)
        assert min(r.slack_ps for r in records) == 400

    def test_stable_data_never_negative(self):
        c = circuit()
        c.setup_hold("D .S0-8", "CK .P2-3", setup=5.0, hold=2.0)
        (rec,) = compute_slack(c, compute_windows(c))
        assert rec.slack_ps is not None and rec.slack_ps >= 0

    def test_changing_data_in_guard_is_negative(self):
        # Data is the clock itself through a small delay: it always
        # changes inside its own setup/hold guard.
        c = circuit()
        c.buf("D", "CK .P2-3", delay=(0.5, 1.0))
        c.setup_hold("D", "CK .P2-3", setup=5.0, hold=5.0)
        (rec,) = compute_slack(c, compute_windows(c))
        assert rec.slack_ps is not None and rec.slack_ps < 0

    def test_no_clock_edge(self):
        c = circuit()
        c.setup_hold("D .S0-6", "QUIET .S0-8", setup=5.0, hold=2.0)
        (rec,) = compute_slack(c, compute_windows(c))
        assert rec.no_edge and rec.slack_ps is None

    def test_overflow_at_feedback(self):
        c = circuit()
        c.gate("NOR", "Q", ["R .S0-6", "QB"], delay=(1.0, 2.0))
        c.gate("NOR", "QB", ["S .S0-6", "Q"], delay=(1.0, 2.0))
        c.setup_hold("Q", "CK .P2-3", setup=5.0, hold=2.0)
        (rec,) = compute_slack(c, compute_windows(c))
        assert rec.overflow and rec.slack_ps is None


# ---------------------------------------------------------------------------
# the sta.* lint rule family
# ---------------------------------------------------------------------------


def _rules_fired(c, *rule_ids):
    config = LintConfig(selected=frozenset(rule_ids))
    return [d.rule for d in lint_circuit(c, config).diagnostics]


class TestStaRules:
    def test_negative_slack_rule(self):
        c = circuit()
        c.buf("D", "CK .P2-3", delay=(0.5, 1.0))
        c.setup_hold("D", "CK .P2-3", setup=5.0, hold=5.0)
        assert _rules_fired(c, "sta.negative-slack") == ["sta.negative-slack"]

    def test_cdc_rule_skips_synchronizers(self):
        unsync = circuit()
        unsync.reg("Q1", clock="CKA .P2-3", data="D .S0-6", name="ra")
        unsync.reg("Q2", clock="CKB .P4-5", data="Q1", name="rb")
        unsync.gate("NOT", "OUT", ["Q2"])
        assert _rules_fired(unsync, "sta.clock-domain-crossing") == [
            "sta.clock-domain-crossing"
        ]

        synced = circuit()
        synced.reg("Q1", clock="CKA .P2-3", data="D .S0-6", name="ra")
        synced.reg("Q2", clock="CKB .P4-5", data="Q1", name="sync1")
        synced.reg("Q3", clock="CKB .P4-5", data="Q2", name="sync2")
        assert _rules_fired(synced, "sta.clock-domain-crossing") == []

    def test_unclocked_storage_rule(self):
        c = circuit()
        c.reg("Q", clock="TIED", data="D .S0-6", name="r")
        c.net("TIED")
        assert _rules_fired(c, "sta.unclocked-storage") == [
            "sta.unclocked-storage"
        ]

    def test_window_overflow_rule(self):
        c = circuit()
        c.gate("NOR", "Q", ["R .S0-6", "QB"], delay=(1.0, 2.0))
        c.gate("NOR", "QB", ["S .S0-6", "Q"], delay=(1.0, 2.0))
        fired = _rules_fired(c, "sta.window-overflow")
        assert fired == ["sta.window-overflow"] * len(fired) and fired

    def test_fmax_rule_flags_cdc_binding_path(self):
        # The Fmax-binding check guards Q1, which crosses CKA -> CKB with
        # no synchronizer: the period bound rests on an async hand-off.
        c = circuit()
        c.reg("Q1", clock="CKA .P2-3", data="D .S0-6", name="ra")
        c.reg("Q2", clock="CKB .P4-5", data="Q1", name="rb")
        c.setup_hold("Q1", "CKB .P4-5", setup=3.0, hold=1.0, name="su")
        fired = _rules_fired(c, "sta.fmax")
        assert fired == ["sta.fmax"]

    def test_fmax_rule_quiet_on_clocked_binding_path(self):
        # Same shape, one domain: period-limited but the binding path ends
        # on the clock assertion — nothing to flag.
        c = circuit()
        c.reg("Q1", clock="CK .P2-3", data="D .S0-6", name="ra")
        c.setup_hold("Q1", "CK .P2-3", setup=3.0, hold=1.0, name="su")
        assert _rules_fired(c, "sta.fmax") == []

    def test_witness_trace_unknown_signal_is_unconstrained(self):
        from repro.sta.parametric import trace_witness
        from repro.sta.slack import SlackRecord

        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", name="r")
        ghost = SlackRecord(
            component="x/su", prim="SETUP HOLD CHK", signal="NO SUCH NET",
            clock="CK .P2-3", setup_ps=0, hold_ps=0, slack_ps=-1,
            no_edge=False, overflow=False, origin=None,
        )
        hops, terminal = trace_witness(c, None, None, 50_000, ghost)
        assert hops == [] and terminal == "unconstrained"

    def test_shifter_stays_clean(self):
        c = MacroExpander.from_file("examples/designs/shifter.scald").expand()
        config = LintConfig(
            selected=frozenset(
                {
                    "sta.negative-slack",
                    "sta.clock-domain-crossing",
                    "sta.unclocked-storage",
                    "sta.window-overflow",
                    "sta.fmax",
                }
            )
        )
        assert lint_circuit(c, config).diagnostics == ()


# ---------------------------------------------------------------------------
# enclosure soundness: engine transitions inside static windows
# ---------------------------------------------------------------------------


def _assert_enclosed(c, config=None):
    result = TimingVerifier(c, config).verify()
    analysis = compute_windows(c, config)
    cc = check_encloses(result, analysis)
    assert cc.ok, cc.failures[:5]
    return cc


class TestEnclosure:
    @pytest.mark.parametrize("chips", [60, 200, 500])
    @pytest.mark.parametrize("seed", [1, 7, 1980])
    def test_synth_matrix(self, chips, seed):
        c, _ = generate(SynthConfig(chips=chips, seed=seed)).circuit()
        cc = _assert_enclosed(c)
        assert cc.nets_checked > 0

    def test_examples_designs(self):
        for path in sorted(glob.glob("examples/designs/*.scald")):
            c = MacroExpander.from_file(path).expand()
            cc = _assert_enclosed(c)
            assert cc.cases_checked == max(1, len(c.cases))

    def test_feedback_design_is_enclosed(self):
        # Widened-to-full windows trivially enclose whatever oscillation
        # the engine settles on — but the path must not crash.
        c = circuit()
        c.gate("NOR", "Q", ["R .S0-6", "QB"], delay=(1.0, 2.0))
        c.gate("NOR", "QB", ["S .S0-6", "Q"], delay=(1.0, 2.0))
        result = TimingVerifier(c).verify()
        assert check_encloses(result, compute_windows(c)).ok

    @settings(max_examples=10, deadline=None)
    @given(
        chips=st.integers(min_value=40, max_value=150),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_random_synth(self, chips, seed):
        c, _ = generate(SynthConfig(chips=chips, seed=seed)).circuit()
        _assert_enclosed(c)

    @settings(max_examples=8, deadline=None)
    @given(
        chips=st.integers(min_value=40, max_value=120),
        seed=st.integers(min_value=0, max_value=5_000),
        data=st.data(),
    )
    def test_property_constrained_enclosure(self, chips, seed, data):
        """A random valid ConstraintSet keeps static enclosing the engine.

        Constraints tighten (uncertainty), relax (multicycle), shift
        (latency) or waive (false path) individual checks — but always
        identically in both analyses, so the enclosure AND the per-check
        verdict contract must survive any mix of them.
        """
        from repro.constraints.resolve import CheckerMods, ConstraintSet

        c, _ = generate(SynthConfig(chips=chips, seed=seed)).circuit()
        checkers = sorted(
            comp.name
            for comp in c.iter_components()
            if comp.prim.name in (
                "SETUP_HOLD_CHK", "SETUP_RISE_HOLD_FALL_CHK",
            )
        )[:8]
        mods = {}
        for name in checkers:
            if not data.draw(st.booleans(), label=f"constrain {name}"):
                continue
            mods[name] = CheckerMods(
                setup_cycles=data.draw(
                    st.integers(1, 3), label=f"{name} setup_cycles"
                ),
                hold_cycles=data.draw(
                    st.integers(0, 1), label=f"{name} hold_cycles"
                ),
                uncertainty_ps=data.draw(
                    st.integers(0, 2_000), label=f"{name} uncertainty"
                ),
                clock_shift_ps=data.draw(
                    st.integers(0, 1_000), label=f"{name} latency"
                ),
                waived=data.draw(st.booleans(), label=f"{name} waived"),
            )
        cs = ConstraintSet(
            path="<property>", period_ps=c.period_ps, checker_mods=mods
        )
        result = TimingVerifier(c, constraints=cs).verify()
        analysis = compute_windows(c, constraints=cs)
        slack = compute_slack(c, analysis, constraints=cs)
        cc = check_encloses(result, analysis, slack=slack)
        assert cc.ok, (cc.failures[:3], cc.verdict_failures[:3])


# ---------------------------------------------------------------------------
# surfaces: analyze facade, scald-sta CLI, scald-tv --crosscheck
# ---------------------------------------------------------------------------


class TestSurfaces:
    def test_analyze_facade(self):
        c = MacroExpander.from_file("examples/designs/shifter.scald").expand()
        a = analyze(c)
        assert a.ok
        assert len(a.domains.storage) == 2
        assert len(a.slack) == 2
        assert a.windows.period == c.period_ps

    def test_scald_sta_text(self, capsys):
        from repro.sta.cli import main

        assert main(["examples/designs/shifter.scald"]) == 0
        out = capsys.readouterr().out
        assert "STATIC TIMING ANALYSIS" in out
        assert "statically clean" in out

    def test_scald_sta_json(self, capsys):
        from repro.sta.cli import main

        assert main(["examples/designs/shifter.scald", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["period_ps"] == 50_000
        assert {s["component"] for s in doc["slack"]} == {
            "inreg/su", "outreg/su",
        }

    def test_scald_sta_usage_errors(self, capsys):
        from repro.sta.cli import main

        assert main([]) == 2
        assert main(["/nonexistent/x.scald"]) == 2

    def test_scald_tv_crosscheck(self, capsys):
        from repro.cli import main

        assert main(["examples/designs/shifter.scald", "--crosscheck"]) == 0
        assert "crosscheck: static windows enclose" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# satellites: lint --select, JSON envelope, naive-profile rendering
# ---------------------------------------------------------------------------


class TestLintSelect:
    def test_select_runs_only_named_rules(self):
        c = circuit()
        c.buf("D", "CK .P2-3", delay=(0.5, 1.0))
        c.setup_hold("D", "CK .P2-3", setup=5.0, hold=5.0)
        all_diags = lint_circuit(c).diagnostics
        picked = lint_circuit(
            c, LintConfig(selected=frozenset({"sta.negative-slack"}))
        ).diagnostics
        assert {d.rule for d in picked} == {"sta.negative-slack"}
        assert len(picked) <= len(all_diags)

    def test_disable_wins_over_select(self):
        c = circuit()
        c.buf("D", "CK .P2-3", delay=(0.5, 1.0))
        c.setup_hold("D", "CK .P2-3", setup=5.0, hold=5.0)
        config = LintConfig(
            selected=frozenset({"sta.negative-slack"}),
            disabled=frozenset({"sta.negative-slack"}),
        )
        assert lint_circuit(c, config).diagnostics == ()

    def test_cli_select_unknown_rule_exits_2(self, capsys):
        from repro.lint.cli import main

        code = main(
            ["examples/designs/shifter.scald", "--select", "no-such-rule"]
        )
        assert code == 2
        assert "unknown rule(s): no-such-rule" in capsys.readouterr().err

    def test_cli_disable_unknown_rule_exits_2(self, capsys):
        from repro.lint.cli import main

        code = main(
            ["examples/designs/shifter.scald", "--disable", "nope,dead-net"]
        )
        assert code == 2
        assert "unknown rule(s): nope" in capsys.readouterr().err

    def test_cli_select_known_rule_runs(self, capsys):
        from repro.lint.cli import main

        code = main(["examples/designs/shifter.scald", "--select", "dead-net"])
        assert code == 0
        assert "dead-net" in capsys.readouterr().out


class TestLintJsonEnvelope:
    def test_summary_fields(self, capsys):
        from repro.lint.cli import main

        assert main(["examples/designs/shifter.scald", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        summary = doc["summary"]
        for key in ("errors", "warnings", "infos", "total", "suppressed"):
            assert key in summary
        assert summary["total"] == (
            summary["errors"] + summary["warnings"] + summary["infos"]
        )

    def test_suppressed_count(self):
        from repro.lint import lint_source

        src = (
            "design T;\n"
            "period 50 ns;\n"
            "clock_unit 6.25 ns;\n"
            "-- lint: disable=dead-net\n"
            'prim BUF b (I="CK .P2-3", OUT="UNUSED") delay=1:2;\n'
        )
        result = lint_source(src, "t.scald")
        assert all(d.rule != "dead-net" for d in result.diagnostics)
        assert result.suppressed >= 1


class TestNaiveProfile:
    def test_disabled_caches_report_disabled(self):
        from repro.reporting.stats import profile_json, profile_report

        c = MacroExpander.from_file("examples/designs/shifter.scald").expand()
        res = TimingVerifier(c, VerifyConfig().naive()).verify()
        caches = profile_json(res)["caches"]
        assert caches["memo_hit_rate"] == "disabled"
        assert caches["intern_hit_rate"] == "disabled"
        assert caches["prepared_hit_rate"] == "disabled"
        text = profile_report(res)
        assert "evaluation memo: disabled" in text
        assert "0%" not in text.split("evaluation memo")[1]

    def test_enabled_caches_stay_numeric(self):
        from repro.reporting.stats import profile_json

        c = MacroExpander.from_file("examples/designs/shifter.scald").expand()
        res = TimingVerifier(c).verify()
        caches = profile_json(res)["caches"]
        assert isinstance(caches["memo_hit_rate"], float)
        assert isinstance(caches["intern_hit_rate"], float)
