"""Tests for the long-lived verification Session (repro.session)."""

import pytest

from repro import Session, TimingVerifier, VerifyConfig
from repro.hdl.expander import MacroExpander
from repro.incremental import ConstraintsEdit

SHIFTER = "examples/designs/shifter.scald"
MULTICYCLE = "examples/designs/multicycle.scald"
MULTICYCLE_SDC = "examples/designs/multicycle.sdc"


def _expand(path):
    return MacroExpander.from_file(path).expand()


class TestSessionVerify:
    @pytest.mark.parametrize("path", [SHIFTER, MULTICYCLE])
    def test_matches_one_shot_verifier(self, path):
        """A session's full run is byte-identical to TimingVerifier's."""
        session = Session.from_file(path)
        got = session.verify()
        want = TimingVerifier(_expand(path)).verify()
        assert got.error_listing() == want.error_listing()
        assert got.xref_assumed_stable == want.xref_assumed_stable
        for case in range(len(want.cases)):
            assert got.summary_listing(case=case) == want.summary_listing(
                case=case
            )

    def test_verifier_facade_is_a_session(self):
        """TimingVerifier still works (it delegates to a one-shot session)."""
        result = TimingVerifier(_expand(SHIFTER)).verify()
        assert result.ok
        assert result.stats.incremental_runs == 0

    def test_engine_persists_across_runs(self):
        session = Session.from_file(SHIFTER)
        session.verify()
        engine = session.engine
        session.verify()
        assert session.engine is engine
        assert session.runs == 2

    def test_repeated_runs_identical(self):
        session = Session.from_file(SHIFTER)
        first = session.verify()
        second = session.verify()
        assert first.error_listing() == second.error_listing()
        assert first.summary_listing() == second.summary_listing()

    def test_from_source(self):
        source = open(SHIFTER).read()
        result = Session.from_source(source, name="shifter").verify()
        assert result.ok

    def test_config_respected(self):
        config = VerifyConfig(memoize_evaluation=False)
        session = Session.from_file(SHIFTER, config=config)
        result = session.verify()
        assert result.ok
        assert result.stats.memo_hits == 0


class TestSessionInternTable:
    def test_table_is_session_owned(self):
        a = Session.from_file(SHIFTER)
        b = Session.from_file(SHIFTER)
        assert a.intern_table is not b.intern_table
        a.verify()
        assert len(a.intern_table) > 0
        assert len(b.intern_table) == 0  # never ran; nothing interned

    def test_engine_interns_into_session_table(self):
        session = Session.from_file(SHIFTER)
        result = session.verify()
        # Every stored waveform is the interned instance: re-interning a
        # structurally equal copy returns the stored object itself.
        engine = session.engine
        for wf in result.cases[0].waveforms.values():
            assert engine._intern(wf) is wf


class TestSessionStatic:
    def test_sta_over_session_circuit(self):
        session = Session.from_file(SHIFTER)
        analysis = session.sta()
        assert analysis.ok

    def test_fmax_over_session_circuit(self):
        session = Session.from_file(SHIFTER)
        res = session.fmax()
        assert res.fmax_mhz is not None and res.fmax_mhz > 0

    def test_sdc_loaded_from_file(self):
        clean = Session.from_file(MULTICYCLE, sdc=MULTICYCLE_SDC).verify()
        dirty = Session.from_file(MULTICYCLE).verify()
        assert clean.ok
        assert not dirty.ok  # by design: the path needs its 2-cycle waiver

    def test_constraints_edit_swaps_sdc(self):
        session = Session.from_file(MULTICYCLE)
        assert not session.verify().ok
        session.edit(ConstraintsEdit(path=MULTICYCLE_SDC))
        assert session.reverify(prescreen=False).ok
        session.edit(ConstraintsEdit(clear=True))
        assert not session.reverify(prescreen=False).ok
